"""Algorithm 1: the fast path's top-k tracker.

The hash table ``H`` holds at most ``k`` flows, each with three counters:

* ``e`` — the maximum byte count possibly missed before insertion,
* ``r`` — the residual byte count,
* ``d`` — bytes decremented since insertion.

Two globals support control-plane recovery: ``V`` (total bytes seen by
the fast path) and ``E`` (sum of all decrements).  When the table is
full and a new flow arrives, ``compute_thresh`` fits the current values
to a power law (probabilistic lossy counting [15]) and picks a decrement
``e`` slightly above the smallest tracked value, so *several* small
flows are evicted per O(k) pass — the amortization that makes this
algorithm an order of magnitude cheaper than Misra-Gries (Figure 16a).

Lemma 4.1 invariants (property-tested in ``tests/test_fastpath.py``):

1. any flow with true size ``> E`` is tracked;
2. for tracked flows, ``r + d <= v_true <= r + d + e``;
3. every flow's error is at most ``(1 - delta)^(1/theta) * V / (k+1)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.common.errors import ConfigError
from repro.common.flow import FlowKey

#: Bytes per hash-table entry: 13-byte 5-tuple key + three 8-byte
#: counters + pointer/bookkeeping overhead.  8 KB of fast-path memory
#: therefore holds ~204 flows, matching the paper's observation that the
#: default fast path tracks ~0.7% of flows (§7.5).
ENTRY_BYTES = 40

_DEFAULT_DELTA = 0.05


class UpdateKind(Enum):
    """What one fast-path update did — the data plane charges CPU by it."""

    HIT = "hit"  # existing flow: one counter update
    INSERT = "insert"  # new flow into a non-full table
    KICKOUT = "kickout"  # full table: threshold pass over all k entries


@dataclass
class FlowEntry:
    """Per-flow counters ``(e, r, d)`` of Algorithm 1."""

    e: float
    r: float
    d: float

    @property
    def lower_bound(self) -> float:
        """Guaranteed minimum of the flow's true byte count (Lemma 4.1)."""
        return self.r + self.d

    @property
    def upper_bound(self) -> float:
        """Guaranteed maximum of the flow's true byte count (Lemma 4.1)."""
        return self.r + self.d + self.e

    @property
    def estimate(self) -> float:
        """Midpoint estimate used when a single value is required."""
        return self.r + self.d + self.e / 2.0


def compute_thresh(values: list[float], delta: float = _DEFAULT_DELTA) -> float:
    """``ComputeThresh`` of Algorithm 1 (power-law eviction threshold).

    Fits the ``k+1`` input values to ``Pr{Y > y} = eps * y^theta`` using
    the two largest values, then returns the threshold ``e`` such that a
    flow larger than the smallest input is evicted with probability at
    most ``delta``:

        theta = log_b(1/2),  b = (a1 - 1) / (a2 - 1)
        e = (1 - delta)^(1/theta) * a_{k+1}

    Degenerate fits (fewer than two values above 1, or ``a1 == a2``)
    fall back to the Misra-Gries decrement ``e = a_{k+1}``, which keeps
    every Lemma 4.1 guarantee.
    """
    if not values:
        raise ConfigError("compute_thresh needs at least one value")
    ordered = sorted(values, reverse=True)
    a1 = ordered[0]
    a2 = ordered[1] if len(ordered) > 1 else a1
    a_min = ordered[-1]
    if a1 <= 1.0 or a2 <= 1.0 or a1 == a2:
        return max(a_min, 1.0)
    b = (a1 - 1.0) / (a2 - 1.0)
    theta = math.log(0.5) / math.log(b)  # log_b(1/2) < 0
    scale = (1.0 - delta) ** (1.0 / theta)  # > 1 since 1/theta < 0
    return max(scale * a_min, a_min, 1.0)


class FastPath:
    """The fast path of one SketchVisor data plane (Algorithm 1).

    Parameters
    ----------
    memory_bytes:
        Fast-path memory budget; capacity is ``memory_bytes // 40``
        flows (paper default: 8 KB ≈ 204 flows).
    delta:
        Eviction-probability parameter of ``ComputeThresh``.
    """

    def __init__(
        self, memory_bytes: int = 8192, delta: float = _DEFAULT_DELTA
    ):
        capacity = memory_bytes // ENTRY_BYTES
        if capacity < 1:
            raise ConfigError(
                f"memory_bytes={memory_bytes} holds no entries "
                f"(need >= {ENTRY_BYTES})"
            )
        if not 0.0 < delta < 1.0:
            raise ConfigError("delta must be in (0, 1)")
        self.capacity = capacity
        self.memory_bytes = memory_bytes
        self.delta = delta
        self.table: dict[FlowKey, FlowEntry] = {}
        self.total_bytes = 0.0  # V
        self.total_decremented = 0.0  # E
        # Operation statistics (Figures 15 and 16a).
        self.num_updates = 0
        self.num_hits = 0
        self.num_inserts = 0
        self.num_kickouts = 0
        self.num_evicted = 0
        self.num_rejected = 0  # kick-out passes that admitted nobody

    # ------------------------------------------------------------------
    def update(self, flow: FlowKey, value: int) -> UpdateKind:
        """Record one packet ``(flow, value)``; returns the work done."""
        self.num_updates += 1
        self.total_bytes += value

        entry = self.table.get(flow)
        if entry is not None:
            entry.r += value
            self.num_hits += 1
            return UpdateKind.HIT

        if len(self.table) < self.capacity:
            self.table[flow] = FlowEntry(
                e=self.total_decremented, r=float(value), d=0.0
            )
            self.num_inserts += 1
            return UpdateKind.INSERT

        # Table full: amortized kick-out pass (lines 11-19).
        self.num_kickouts += 1
        residuals = [entry.r for entry in self.table.values()]
        threshold = compute_thresh(residuals + [float(value)], self.delta)
        evicted = []
        for key, entry in self.table.items():
            entry.r -= threshold
            entry.d += threshold
            if entry.r <= 0:
                evicted.append(key)
        for key in evicted:
            del self.table[key]
        self.num_evicted += len(evicted)
        if value > threshold and len(self.table) < self.capacity:
            self.table[flow] = FlowEntry(
                e=self.total_decremented,
                r=float(value) - threshold,
                d=threshold,
            )
            self.num_inserts += 1
        else:
            self.num_rejected += 1
        self.total_decremented += threshold
        return UpdateKind.KICKOUT

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def bounds(self) -> dict[FlowKey, tuple[float, float]]:
        """Per-flow (lower, upper) byte-count bounds (Lemma 4.1)."""
        return {
            flow: (entry.lower_bound, entry.upper_bound)
            for flow, entry in self.table.items()
        }

    def estimates(self) -> dict[FlowKey, float]:
        """Midpoint per-flow estimates."""
        return {
            flow: entry.estimate for flow, entry in self.table.items()
        }

    def snapshot(self) -> "FastPathSnapshot":
        """Freeze the current state for the control-plane report.

        Mirrors the prototype, where the user-space daemon snapshots the
        shared-memory fast path each epoch while the kernel module keeps
        updating it (§6).
        """
        return FastPathSnapshot(
            entries={
                flow: FlowEntry(entry.e, entry.r, entry.d)
                for flow, entry in self.table.items()
            },
            total_bytes=self.total_bytes,
            total_decremented=self.total_decremented,
            insert_count=self.num_inserts,
            evict_count=self.num_evicted,
            update_count=self.num_updates,
            hit_count=self.num_hits,
            kickout_count=self.num_kickouts,
            reject_count=self.num_rejected,
        )

    def reset(self) -> None:
        """Clear all state for the next epoch."""
        self.table.clear()
        self.total_bytes = 0.0
        self.total_decremented = 0.0

    def error_bound(self) -> float:
        """Appendix B bound on any flow's error: ``~ V / (k+1)``."""
        return self.total_bytes / (self.capacity + 1)


@dataclass
class FastPathSnapshot:
    """Immutable epoch report of one host's fast path.

    Beyond the paper's ``V`` and ``E`` globals this carries two more
    O(1) counters, insertions and evictions.  Without them the number
    of *missed* small flows is unidentifiable from the snapshot (any
    volume can be few large or many tiny flows), and cardinality-style
    recovery has no anchor; with them it becomes well-posed.  See
    DESIGN.md ("small-flow component y").
    """

    entries: dict[FlowKey, FlowEntry]
    total_bytes: float
    total_decremented: float
    insert_count: int = 0
    evict_count: int = 0
    # Remaining O(1) operation counters (Figures 15/16a), carried so
    # telemetry published from a snapshot matches the live fast path.
    update_count: int = 0
    hit_count: int = 0
    kickout_count: int = 0
    reject_count: int = 0

    @property
    def tracked_bytes_lower(self) -> float:
        """Sum of tracked flows' lower bounds."""
        return sum(entry.lower_bound for entry in self.entries.values())

    @property
    def distinct_flow_hint(self) -> float:
        """Estimated distinct flows the fast path ever inserted.

        Evicted flows that later return re-insert and double count;
        splitting the difference (half of evictions assumed returns)
        keeps the hint between the two extremes.
        """
        return max(
            len(self.entries),
            self.insert_count - 0.5 * self.evict_count,
        )
