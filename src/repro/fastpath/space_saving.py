"""Space-Saving top-k (Metwally et al.) — an alternative fast path.

Not part of the paper, but the third classic counter-based top-k next
to Misra-Gries [33] and lossy counting [15]; implemented to ablate the
paper's fast-path choice.  On a miss with a full table, Space-Saving
*replaces* the minimum entry, crediting the newcomer with the evictee's
counter — O(1) amortized with a min-heap (here: a lazy min index), but
with a per-flow overestimation error equal to the inherited counter.

Interface-compatible with :class:`~repro.fastpath.topk.FastPath` so
the switch and the ablation benchmarks can swap it in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.flow import FlowKey
from repro.fastpath.topk import ENTRY_BYTES, UpdateKind


@dataclass
class SSEntry:
    """Space-Saving counters: estimate and inherited error."""

    count: float  # estimated byte count (overestimates)
    error: float  # inherited counter at takeover (max overestimate)


class SpaceSavingTopK:
    """Space-Saving tracker over flows, byte-weighted.

    Parameters
    ----------
    memory_bytes:
        Budget; entries cost the same 40 bytes as the other trackers.
    """

    def __init__(self, memory_bytes: int = 8192):
        capacity = memory_bytes // ENTRY_BYTES
        if capacity < 1:
            raise ConfigError("memory too small for a single entry")
        self.capacity = capacity
        self.memory_bytes = memory_bytes
        self.table: dict[FlowKey, SSEntry] = {}
        self.total_bytes = 0.0
        self.num_updates = 0
        self.num_hits = 0
        self.num_inserts = 0
        self.num_kickouts = 0  # takeovers: each scans for the minimum
        self.num_evicted = 0

    def update(self, flow: FlowKey, value: int) -> UpdateKind:
        self.num_updates += 1
        self.total_bytes += value

        entry = self.table.get(flow)
        if entry is not None:
            entry.count += value
            self.num_hits += 1
            return UpdateKind.HIT

        if len(self.table) < self.capacity:
            self.table[flow] = SSEntry(count=float(value), error=0.0)
            self.num_inserts += 1
            return UpdateKind.INSERT

        # Replace the minimum entry (the Space-Saving step).
        self.num_kickouts += 1
        victim = min(self.table, key=lambda key: self.table[key].count)
        inherited = self.table[victim].count
        del self.table[victim]
        self.num_evicted += 1
        self.table[flow] = SSEntry(
            count=inherited + value, error=inherited
        )
        return UpdateKind.KICKOUT

    # ------------------------------------------------------------------
    def bounds(self) -> dict[FlowKey, tuple[float, float]]:
        """Per-flow bounds: ``count - error <= v <= count``.

        Space-Saving overestimates: the inherited counter may contain
        other flows' bytes.
        """
        return {
            flow: (entry.count - entry.error, entry.count)
            for flow, entry in self.table.items()
        }

    def estimates(self) -> dict[FlowKey, float]:
        return {
            flow: entry.count for flow, entry in self.table.items()
        }

    def reset(self) -> None:
        self.table.clear()
        self.total_bytes = 0.0

    def error_bound(self) -> float:
        """Classic Space-Saving guarantee: error <= V / k."""
        return self.total_bytes / self.capacity
