"""Misra-Gries top-k [33], weighted variant — the fast-path baseline.

This is ``MGFastPath`` in the paper's evaluation: when the table is full
and a new flow arrives, the *minimum* residual is subtracted from every
entry — enough to evict exactly the smallest flow(s) — so nearly every
new small flow triggers a full O(k) pass (Figure 16a shows an order of
magnitude more kick-outs than SketchVisor's fast path).

Error characteristics: every flow shares the worst-case bound
``V / (k+1)``; per-flow bounds are ``r <= v <= r + D`` with ``D`` the
global decrement sum, which is much looser than the three-counter
per-flow bounds of Algorithm 1 (Figure 16b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.flow import FlowKey
from repro.fastpath.topk import ENTRY_BYTES, UpdateKind


@dataclass
class MGEntry:
    """Misra-Gries keeps one counter per flow."""

    r: float


class MisraGriesTopK:
    """Weighted Misra-Gries tracker with the FastPath interface.

    Parameters
    ----------
    memory_bytes:
        Memory budget; sized with the same 40-byte entries as FastPath
        for an apples-to-apples comparison (the extra two counters of
        Algorithm 1 are charged to it, not to Misra-Gries).
    """

    def __init__(self, memory_bytes: int = 8192):
        capacity = memory_bytes // ENTRY_BYTES
        if capacity < 1:
            raise ConfigError("memory too small for a single entry")
        self.capacity = capacity
        self.memory_bytes = memory_bytes
        self.table: dict[FlowKey, MGEntry] = {}
        self.total_bytes = 0.0  # V
        self.total_decremented = 0.0  # D: shared error bound
        self.num_updates = 0
        self.num_hits = 0
        self.num_inserts = 0
        self.num_kickouts = 0
        self.num_evicted = 0

    def update(self, flow: FlowKey, value: int) -> UpdateKind:
        self.num_updates += 1
        self.total_bytes += value

        entry = self.table.get(flow)
        if entry is not None:
            entry.r += value
            self.num_hits += 1
            return UpdateKind.HIT

        if len(self.table) < self.capacity:
            self.table[flow] = MGEntry(r=float(value))
            self.num_inserts += 1
            return UpdateKind.INSERT

        # Full: subtract the minimum counter from every entry and evict
        # exactly ONE flow — the textbook Misra-Gries step the paper
        # contrasts with: "it performs O(k) operations to update k
        # counters ... for kicking out each flow" (§4.1).  Flows tied at
        # the minimum leave one at a time over subsequent passes, which
        # is precisely the per-flow O(k) cost SketchVisor amortizes.
        self.num_kickouts += 1
        minimum = min(entry.r for entry in self.table.values())
        decrement = min(minimum, float(value))
        evicted_key: FlowKey | None = None
        for key, entry in self.table.items():
            entry.r -= decrement
            if evicted_key is None and entry.r <= 0:
                evicted_key = key
        if evicted_key is not None:
            del self.table[evicted_key]
            self.num_evicted += 1
        remaining = float(value) - decrement
        if remaining > 0 and len(self.table) < self.capacity:
            self.table[flow] = MGEntry(r=remaining)
        self.total_decremented += decrement
        return UpdateKind.KICKOUT

    # ------------------------------------------------------------------
    def bounds(self) -> dict[FlowKey, tuple[float, float]]:
        """Per-flow bounds: ``r <= v <= r + D`` (shared upper slack)."""
        slack = self.total_decremented
        return {
            flow: (entry.r, entry.r + slack)
            for flow, entry in self.table.items()
        }

    def estimates(self) -> dict[FlowKey, float]:
        return {flow: entry.r for flow, entry in self.table.items()}

    def reset(self) -> None:
        self.table.clear()
        self.total_bytes = 0.0
        self.total_decremented = 0.0

    def error_bound(self) -> float:
        return self.total_bytes / (self.capacity + 1)
