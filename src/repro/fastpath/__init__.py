"""The fast path (§4): SketchVisor's top-k algorithm and its baseline.

:class:`~repro.fastpath.topk.FastPath` implements Algorithm 1 — a
Misra-Gries-style top-k tracker augmented with probabilistic lossy
counting, keeping three counters per flow for tight per-flow bounds
(Lemma 4.1) and amortizing kick-outs by evicting multiple small flows at
once.  :class:`~repro.fastpath.misra_gries.MisraGriesTopK` is the
unmodified Misra-Gries algorithm [33] the paper compares against
(Figure 16).
"""

from repro.fastpath.misra_gries import MisraGriesTopK
from repro.fastpath.space_saving import SpaceSavingTopK
from repro.fastpath.topk import FastPath, FlowEntry, UpdateKind

__all__ = [
    "FastPath",
    "FlowEntry",
    "MisraGriesTopK",
    "SpaceSavingTopK",
    "UpdateKind",
]
