"""Baselines the paper compares against.

* :class:`~repro.baselines.trumpet.TrumpetMonitor` — Trumpet [38], a
  hash-table-per-flow monitor (Figure 17: similar throughput, much more
  memory than sketches).
* :class:`~repro.baselines.sampling.SampledNetFlow` — NetFlow/sFlow
  style packet sampling, the status quo in Open vSwitch the paper's
  introduction argues against (coarse-grained, misses information).
"""

from repro.baselines.sample_and_hold import SampleAndHold
from repro.baselines.sampling import SampledNetFlow
from repro.baselines.trumpet import TrumpetMonitor

__all__ = ["SampleAndHold", "SampledNetFlow", "TrumpetMonitor"]
