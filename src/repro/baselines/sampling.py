"""NetFlow/sFlow-style packet sampling — the software-switch status quo.

Open vSwitch ships only sampling-based measurement (§1); the paper's
motivation is that sampling "inherently suffers from low measurement
accuracy and achieves only coarse-grained measurement".  This baseline
quantifies that: sample 1-in-N packets, scale estimates by N.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError
from repro.common.flow import FlowKey
from repro.traffic.trace import Trace


class SampledNetFlow:
    """Uniform 1-in-N packet sampler with scaled-up flow estimates.

    Parameters
    ----------
    sample_rate:
        Probability of recording each packet (NetFlow's 1/N).
    seed:
        Sampling RNG seed.
    """

    def __init__(self, sample_rate: float = 0.01, seed: int = 1):
        if not 0.0 < sample_rate <= 1.0:
            raise ConfigError("sample_rate must be in (0, 1]")
        self.sample_rate = sample_rate
        self._rng = np.random.default_rng(seed)
        self.sampled: dict[FlowKey, float] = {}
        self.sampled_packets = 0
        self.total_packets = 0

    def update(self, flow: FlowKey, value: int) -> None:
        self.total_packets += 1
        if self._rng.random() < self.sample_rate:
            self.sampled_packets += 1
            self.sampled[flow] = self.sampled.get(flow, 0.0) + value

    def process(self, trace: Trace) -> None:
        for packet in trace:
            self.update(packet.flow, packet.size)

    # ------------------------------------------------------------------
    def flow_estimates(self) -> dict[FlowKey, float]:
        """Per-flow byte estimates, inverse-probability scaled."""
        scale = 1.0 / self.sample_rate
        return {
            flow: size * scale for flow, size in self.sampled.items()
        }

    def heavy_hitters(self, threshold: float) -> dict[FlowKey, float]:
        return {
            flow: estimate
            for flow, estimate in self.flow_estimates().items()
            if estimate > threshold
        }

    def cardinality_estimate(self) -> float:
        """Naive scaled distinct count — badly biased, by design.

        Sampling cannot see flows whose every packet was skipped, which
        is why the paper dismisses it for fine-grained measurement.
        """
        return len(self.sampled) / self.sample_rate

    def reset(self) -> None:
        self.sampled.clear()
        self.sampled_packets = 0
        self.total_packets = 0
