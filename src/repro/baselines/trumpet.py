"""Trumpet [38]: per-flow state in an over-provisioned hash table.

The paper's §7.6 implements Trumpet's Packet Monitor with one heavy-
hitter trigger: a hash table sized ``overprovision x expected_flows``
buckets, chaining collisions through linked lists.  Per-flow exact
byte counts give perfect accuracy, but memory grows linearly with the
number of flows — the contrast Figure 17(b) draws against sketches.

Implemented as a :class:`Sketch` so the data-plane simulation and the
cost model treat it uniformly (it runs NoFastPath: it is fast enough
that it never needs one).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError, MergeError
from repro.common.flow import FlowKey
from repro.common.hashing import HashFamily
from repro.sketches.base import CostProfile, Sketch

#: Bytes per chained entry: 13-byte key + 8-byte counter + 8-byte next
#: pointer + allocator overhead.
_ENTRY_BYTES = 32
#: Bytes per bucket head pointer.
_BUCKET_BYTES = 8


class TrumpetMonitor(Sketch):
    """Trumpet packet monitor with a single heavy-hitter trigger.

    Parameters
    ----------
    expected_flows:
        Provisioning estimate of distinct flows per epoch.
    overprovision:
        Hash-table over-provisioning factor (paper: 3 and 7).
    """

    name = "trumpet"
    low_rank = False

    def __init__(
        self,
        expected_flows: int = 10_000,
        overprovision: int = 3,
        seed: int = 1,
    ):
        super().__init__(seed)
        if expected_flows < 1 or overprovision < 1:
            raise ConfigError(
                "expected_flows and overprovision must be >= 1"
            )
        self.expected_flows = expected_flows
        self.overprovision = overprovision
        self.num_buckets = expected_flows * overprovision
        self._hash = HashFamily(1, seed)
        # buckets[i] = {flow: bytes}: a dict models the chain exactly
        # for accuracy; chain length statistics feed the cost model.
        self.buckets: list[dict[FlowKey, float]] = [
            {} for _ in range(self.num_buckets)
        ]
        self._num_flows = 0
        self._chain_probes = 0
        self._updates = 0

    # ------------------------------------------------------------------
    def update(self, flow: FlowKey, value: int) -> None:
        bucket = self.buckets[
            self._hash.bucket(0, flow.key64, self.num_buckets)
        ]
        self._updates += 1
        self._chain_probes += max(len(bucket), 1)
        if flow in bucket:
            bucket[flow] += value
        else:
            bucket[flow] = float(value)
            self._num_flows += 1

    def flow_bytes(self) -> dict[FlowKey, float]:
        """Exact per-flow byte counts (Trumpet's whole point)."""
        merged: dict[FlowKey, float] = {}
        for bucket in self.buckets:
            merged.update(bucket)
        return merged

    def heavy_hitters(self, threshold: float) -> dict[FlowKey, float]:
        """The heavy-hitter trigger: exact flows above threshold."""
        return {
            flow: size
            for flow, size in self.flow_bytes().items()
            if size > threshold
        }

    @property
    def mean_chain_length(self) -> float:
        if self._updates == 0:
            return 1.0
        return self._chain_probes / self._updates

    # ------------------------------------------------------------------
    def merge(self, other: Sketch) -> None:
        self._check_mergeable(other)
        assert isinstance(other, TrumpetMonitor)
        if other.num_buckets != self.num_buckets:
            raise MergeError("Trumpet table sizes differ")
        for index, bucket in enumerate(other.buckets):
            mine = self.buckets[index]
            for flow, size in bucket.items():
                if flow in mine:
                    mine[flow] += size
                else:
                    mine[flow] = size
                    self._num_flows += 1

    def to_matrix(self) -> np.ndarray:
        totals = np.array(
            [sum(bucket.values()) for bucket in self.buckets],
            dtype=np.float64,
        )
        return totals.reshape(1, -1)

    def load_matrix(self, matrix: np.ndarray) -> None:
        raise NotImplementedError(
            "Trumpet keeps exact per-flow state; matrix recovery "
            "does not apply"
        )

    def memory_bytes(self) -> int:
        """Bucket array plus live chained entries (grows with flows)."""
        return (
            self.num_buckets * _BUCKET_BYTES
            + self._num_flows * _ENTRY_BYTES
        )

    def cost_profile(self) -> CostProfile:
        # One hash, a chain walk, a counter update, plus trigger
        # matching overhead per packet.
        return CostProfile(
            hashes=1,
            counter_updates=1,
            memory_words=2 * self.mean_chain_length + 8,
        )

    def clone_empty(self) -> "TrumpetMonitor":
        return TrumpetMonitor(
            expected_flows=self.expected_flows,
            overprovision=self.overprovision,
            seed=self.seed,
        )

    def reset(self) -> None:
        for bucket in self.buckets:
            bucket.clear()
        self._num_flows = 0
        self._chain_probes = 0
        self._updates = 0
