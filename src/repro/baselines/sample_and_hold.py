"""Sample-and-hold [19] (Estan & Varghese) — the sampling upgrade.

Cited via Sekar et al. [48] in the paper's related work: packets are
sampled with probability proportional to size, but once a flow is
sampled it is *held* — every subsequent packet is counted exactly.
Heavy flows are caught almost surely and their counts are nearly exact
from the sampling point onward; the per-flow estimate adds the expected
number of bytes missed before sampling (1/p).

Contrast with plain NetFlow sampling (:mod:`repro.baselines.sampling`):
the *hold* step removes most of the variance for large flows, but
memory still grows with the number of sampled flows — the same
linear-memory objection the paper raises against hash tables.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError
from repro.common.flow import FlowKey
from repro.traffic.trace import Trace


class SampleAndHold:
    """Byte-driven sample-and-hold flow monitor.

    Parameters
    ----------
    byte_probability:
        Probability of sampling each *byte*; a packet of size ``s`` is
        sampled with probability ``1 - (1 - p)^s``.  The paper's [19]
        recommends ``p = c / (threshold bytes)`` to catch flows above a
        threshold with high probability.
    """

    def __init__(self, byte_probability: float = 1e-4, seed: int = 1):
        if not 0.0 < byte_probability <= 1.0:
            raise ConfigError("byte_probability must be in (0, 1]")
        self.byte_probability = byte_probability
        self._rng = np.random.default_rng(seed)
        self.held: dict[FlowKey, float] = {}
        self.total_packets = 0
        self.total_bytes = 0.0

    @classmethod
    def for_threshold(
        cls, threshold_bytes: float, oversampling: float = 20.0,
        seed: int = 1,
    ) -> "SampleAndHold":
        """Configure to catch flows above ``threshold_bytes`` w.h.p.

        ``oversampling`` is the expected number of sampled bytes for a
        flow exactly at the threshold ([19]'s O parameter); miss
        probability is ``exp(-oversampling)``.
        """
        return cls(
            byte_probability=min(oversampling / threshold_bytes, 1.0),
            seed=seed,
        )

    # ------------------------------------------------------------------
    def update(self, flow: FlowKey, value: int) -> None:
        self.total_packets += 1
        self.total_bytes += value
        entry = self.held.get(flow)
        if entry is not None:
            self.held[flow] = entry + value  # hold: count exactly
            return
        sample_probability = 1.0 - (
            1.0 - self.byte_probability
        ) ** value
        if self._rng.random() < sample_probability:
            self.held[flow] = float(value)

    def process(self, trace: Trace) -> None:
        for packet in trace:
            self.update(packet.flow, packet.size)

    # ------------------------------------------------------------------
    def flow_estimates(self) -> dict[FlowKey, float]:
        """Held counts plus the expected pre-sampling miss (1/p)."""
        correction = 1.0 / self.byte_probability
        return {
            flow: held + correction
            for flow, held in self.held.items()
        }

    def heavy_hitters(self, threshold: float) -> dict[FlowKey, float]:
        return {
            flow: estimate
            for flow, estimate in self.flow_estimates().items()
            if estimate > threshold
        }

    def memory_bytes(self) -> int:
        """Per-held-flow state: 13-byte key + 8-byte counter + overhead."""
        return len(self.held) * 32

    def reset(self) -> None:
        self.held.clear()
        self.total_packets = 0
        self.total_bytes = 0.0
