"""Accuracy observability: online error estimation and SLO alerting.

The pipeline so far reports *that* it ran; this module reports *how
trustworthy this epoch's answers are*, three ways:

* **theoretical bounds** — per-epoch error envelopes derived from live
  sketch parameters and counters: the Count-Min ``(e/w) * N``
  overestimate bound, a CountSketch ``sqrt(6 * F2 / w)`` envelope with
  ``F2`` self-estimated from the rows, the fast path's Lemma 4.1 /
  Theorem 2 residual bounds from ``(V, E, k)``, and the LENS recovery
  volume decomposition (normal / tracked / small-flow / missing-host
  terms, including the degraded-merge rescale inflation);
* **empirical error** — a :class:`ShadowSampler` keeps a seeded sample
  of flows with their exact byte counts (one vectorized pass over the
  epoch's columns, never per-packet work) and compares the recovered
  answers against them: flow-size ARE, heavy-hitter precision/recall,
  cardinality relative error;
* **SLO alerting** — a declarative :class:`SLOPolicy` (JSON-able
  threshold rules over *any* published metric) evaluated once per
  epoch by :class:`SLOEngine`; breaches are counted, recorded in the
  flight recorder, surfaced as ``ACCURACY_SLO_BREACH`` monitor alerts,
  and can trigger a flight-recorder dump.

Everything is duck-typed over report/result objects (no dataplane or
controlplane imports) so the module sits below every instrumented
layer, like :mod:`repro.telemetry.publish`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.common.errors import ConfigError
from repro.telemetry.registry import MetricsRegistry

#: CountSketch envelope factor: per-row Chebyshev at 6 sigma-squared
#: gives a per-row failure probability of 1/6; the median over ``d``
#: rows fails only when half the rows do, so the envelope holds with
#: probability ``1 - exp(-d * KL(1/2 || 1/6))``.
_CS_ENVELOPE_FACTOR = 6.0
_CS_KL = 0.5 * math.log(0.5 / (1 / 6)) + 0.5 * math.log(0.5 / (5 / 6))

_SHADOW_SEED_SALT = 0x5AD0_0B5E


# ----------------------------------------------------------------------
# Theoretical bounds
# ----------------------------------------------------------------------
def sketch_error_bound(sketch) -> tuple[float, float] | None:
    """``(bound_bytes, confidence)`` for a counter-array sketch.

    Derived from the live sketch state, not the workload: ``N`` (the
    volume the sketch absorbed) is read back from the counter matrix,
    so the bound is correct after merges, rescales, and recovery
    re-injection.  Returns ``None`` for sketches without a published
    closed-form point-query bound.
    """
    counters = getattr(sketch, "counters", None)
    width = getattr(sketch, "width", None)
    depth = getattr(sketch, "depth", None)
    if counters is None or width is None or depth is None:
        return None
    name = getattr(sketch, "name", "")
    if name == "countmin":
        # Each packet lands once per row: N = sum / depth.  Point
        # queries overestimate by at most (e / w) * N with probability
        # 1 - (1/2)^d (Cormode & Muthukrishnan).
        volume = float(counters.sum()) / depth
        bound = math.e / width * volume
        confidence = 1.0 - 0.5**depth
        return bound, confidence
    if name == "countsketch":
        # Per-row sum of squares is an unbiased F2 estimator (cross
        # terms vanish under the sign hashes); the median robustifies.
        f2 = float(np.median((np.asarray(counters) ** 2).sum(axis=1)))
        bound = math.sqrt(_CS_ENVELOPE_FACTOR * max(f2, 0.0) / width)
        confidence = 1.0 - math.exp(-depth * _CS_KL)
        return bound, confidence
    return None


def publish_error_bounds(
    registry: MetricsRegistry, network, reports
) -> None:
    """Publish one epoch's theoretical error envelopes.

    ``network`` is the controller's ``NetworkResult``; ``reports`` the
    surviving per-host ``LocalReport`` list (used for the volume
    decomposition).  All gauges are end-of-epoch absolutes.
    """
    sketch = network.sketch
    envelope = sketch_error_bound(sketch)
    if envelope is not None:
        bound, confidence = envelope
        registry.gauge(
            "sketchvisor_accuracy_sketch_error_bound_bytes",
            "Theoretical per-flow point-query error envelope of the "
            "recovered sketch, from live parameters and counters",
        ).set(bound, sketch=sketch.name)
        registry.gauge(
            "sketchvisor_accuracy_sketch_error_bound_confidence",
            "Probability the per-flow envelope holds (1 - delta)",
        ).set(confidence, sketch=sketch.name)

    snapshot = network.snapshot
    if snapshot is not None and snapshot.entries:
        entries = snapshot.entries.values()
        registry.gauge(
            "sketchvisor_accuracy_fastpath_entry_uncertainty_bytes",
            "Largest per-entry uncertainty e in the merged fast-path "
            "table (Lemma 4.1: true size lies within [r+d, r+d+e])",
        ).set(max(entry.e for entry in entries))
        registry.gauge(
            "sketchvisor_accuracy_fastpath_untracked_bound_bytes",
            "Upper bound on any untracked flow's fast-path bytes "
            "(Lemma 4.1: every flow larger than E is tracked)",
        ).set(snapshot.total_decremented)
        registry.gauge(
            "sketchvisor_accuracy_fastpath_envelope_bytes",
            "Theorem 2 leading error term V / (k + 1) of the merged "
            "fast path",
        ).set(snapshot.total_bytes / (len(snapshot.entries) + 1))

    # Volume decomposition of the recovered answer: where did each
    # byte the controller believes in come from?
    recovered = registry.gauge(
        "sketchvisor_accuracy_recovered_bytes",
        "Recovered epoch volume by component: normal-path counters, "
        "fast-path tracked flows, synthetic small-flow mass, and "
        "degraded-merge rescale inflation",
    )
    recovered.set(
        sum(r.switch.normal_bytes for r in reports), component="normal"
    )
    recovered.set(network.tracked_bytes, component="fastpath_tracked")
    recovered.set(
        network.small_flow_bytes, component="fastpath_small_flows"
    )
    degraded = network.degraded
    inflation_bytes = 0.0
    if degraded is not None and degraded.scale > 1.0:
        reported = sum(
            r.switch.normal_bytes + r.switch.fastpath_bytes
            for r in reports
        )
        inflation_bytes = (degraded.scale - 1.0) * reported
    recovered.set(inflation_bytes, component="missing_host_rescale")


# ----------------------------------------------------------------------
# Shadow ground truth
# ----------------------------------------------------------------------
@dataclass
class ShadowComparison:
    """Empirical error of one epoch against the shadow sample."""

    sampled_flows: int = 0
    #: Mean / max relative error of per-flow size estimates over the
    #: sample (``None`` when the recovered sketch has no point query).
    flow_are: float | None = None
    flow_max_re: float | None = None
    #: Sampled flows whose absolute error exceeded ``bound_bytes``.
    bound_violations: int = 0
    hh_precision: float | None = None
    hh_recall: float | None = None
    cardinality_re: float | None = None


class ShadowSampler:
    """Seeded uniform sample of an epoch's flows with exact sizes.

    The vectorized equivalent of per-flow reservoir sampling: one pass
    over the trace's ``key64``/``sizes`` columns (``np.unique`` +
    ``bincount``) yields exact byte counts for every distinct flow,
    from which a seeded subset of ``sample_size`` flows is kept.  Cost
    is O(packets) NumPy work per epoch — no per-packet Python, nothing
    on the data-plane hot path.
    """

    def __init__(self, sample_size: int = 256, seed: int = 1):
        if sample_size < 1:
            raise ConfigError("shadow sample size must be >= 1")
        self.sample_size = sample_size
        self.seed = seed
        self._epoch_count = 0
        #: Sampled ``FlowKey -> exact bytes`` for the last epoch.
        self.sample: dict = {}
        #: Exact distinct-flow count of the last epoch.
        self.true_cardinality = 0
        self.total_bytes = 0.0

    def observe_trace(self, trace) -> None:
        """Resample from one epoch's trace (call before it runs)."""
        keys = trace.key64
        sizes = trace.sizes
        uniques, first_index, inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
        per_flow = np.bincount(
            inverse, weights=sizes, minlength=len(uniques)
        )
        self.true_cardinality = int(len(uniques))
        self.total_bytes = float(sizes.sum())
        rng = np.random.default_rng(
            (self.seed ^ _SHADOW_SEED_SALT) + self._epoch_count
        )
        self._epoch_count += 1
        if len(uniques) <= self.sample_size:
            chosen = np.arange(len(uniques))
        else:
            chosen = rng.choice(
                len(uniques), size=self.sample_size, replace=False
            )
        packets = trace.packets
        self.sample = {
            packets[int(first_index[i])].flow: float(per_flow[i])
            for i in chosen
        }

    # ------------------------------------------------------------------
    def compare(
        self,
        network,
        answer=None,
        hh_threshold: float | None = None,
        bound_bytes: float | None = None,
    ) -> ShadowComparison:
        """Empirical error of a recovered epoch against the sample.

        ``network`` is the controller's ``NetworkResult``; ``answer``
        the task's answer (a ``{flow: size}`` dict for detection tasks,
        a scalar for cardinality).  ``bound_bytes`` is the published
        theoretical envelope — violations are counted so operators can
        watch bound tightness directly.
        """
        comparison = ShadowComparison(sampled_flows=len(self.sample))
        sketch = network.sketch
        estimate = getattr(sketch, "estimate", None)
        if estimate is not None and self.sample:
            errors = []
            violations = 0
            for flow, true_bytes in self.sample.items():
                try:
                    estimated = float(estimate(flow))
                except TypeError:
                    # Zero-arg estimate (cardinality sketches).
                    estimate = None
                    break
                error = abs(estimated - true_bytes)
                errors.append(error / max(true_bytes, 1.0))
                if bound_bytes is not None and error > bound_bytes:
                    violations += 1
            if estimate is not None and errors:
                comparison.flow_are = float(np.mean(errors))
                comparison.flow_max_re = float(np.max(errors))
                comparison.bound_violations = violations

        if (
            hh_threshold is not None
            and isinstance(answer, dict)
            and self.sample
        ):
            sampled_heavy = {
                flow
                for flow, size in self.sample.items()
                if size > hh_threshold
            }
            answered = set(answer)
            if sampled_heavy:
                comparison.hh_recall = len(
                    sampled_heavy & answered
                ) / len(sampled_heavy)
            answered_in_sample = answered & set(self.sample)
            if answered_in_sample:
                comparison.hh_precision = len(
                    answered_in_sample & sampled_heavy
                ) / len(answered_in_sample)

        if isinstance(answer, (int, float)) and self.true_cardinality:
            comparison.cardinality_re = (
                abs(float(answer) - self.true_cardinality)
                / self.true_cardinality
            )
        return comparison


def publish_shadow_comparison(
    registry: MetricsRegistry, comparison: ShadowComparison
) -> None:
    """Publish one epoch's empirical (shadow-sample) error gauges."""
    registry.gauge(
        "sketchvisor_accuracy_shadow_flows",
        "Flows in the shadow ground-truth sample this epoch",
    ).set(comparison.sampled_flows)
    if comparison.flow_are is not None:
        registry.gauge(
            "sketchvisor_accuracy_empirical_flow_are",
            "Mean relative error of per-flow size estimates over the "
            "shadow sample",
        ).set(comparison.flow_are)
        registry.gauge(
            "sketchvisor_accuracy_empirical_flow_max_re",
            "Worst relative error over the shadow sample",
        ).set(comparison.flow_max_re)
        registry.counter(
            "sketchvisor_accuracy_bound_violations_total",
            "Sampled flows whose empirical error exceeded the "
            "published theoretical envelope (expect <= delta share)",
        ).inc(comparison.bound_violations)
    if comparison.hh_precision is not None:
        registry.gauge(
            "sketchvisor_accuracy_empirical_hh_precision",
            "Heavy-hitter precision over answered flows in the sample",
        ).set(comparison.hh_precision)
    if comparison.hh_recall is not None:
        registry.gauge(
            "sketchvisor_accuracy_empirical_hh_recall",
            "Heavy-hitter recall over the shadow sample's heavy flows",
        ).set(comparison.hh_recall)
    if comparison.cardinality_re is not None:
        registry.gauge(
            "sketchvisor_accuracy_empirical_cardinality_re",
            "Relative error of the cardinality answer vs the exact "
            "per-epoch distinct-flow count",
        ).set(comparison.cardinality_re)


# ----------------------------------------------------------------------
# SLO policy + engine
# ----------------------------------------------------------------------
_OPS = {
    "<=": lambda value, threshold: value <= threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    ">": lambda value, threshold: value > threshold,
}


@dataclass(frozen=True)
class SLORule:
    """One declarative objective over a published metric.

    ``op`` states the *requirement*: ``">="`` means the metric must
    stay at or above ``threshold``; the rule breaches when it does
    not.  ``labels`` selects one child of the family; empty means the
    sum across all label sets.  ``mode="delta"`` evaluates the
    per-epoch increment instead of the running value (what you want
    for counters).
    """

    name: str
    metric: str
    op: str
    threshold: float
    labels: tuple[tuple[str, str], ...] = ()
    mode: str = "value"

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ConfigError(
                f"SLO rule {self.name!r}: unknown op {self.op!r} "
                f"(use one of {sorted(_OPS)})"
            )
        if self.mode not in ("value", "delta"):
            raise ConfigError(
                f"SLO rule {self.name!r}: mode must be 'value' or "
                f"'delta', got {self.mode!r}"
            )

    @classmethod
    def from_dict(cls, spec: dict) -> "SLORule":
        try:
            return cls(
                name=str(spec.get("name") or spec["metric"]),
                metric=str(spec["metric"]),
                op=str(spec.get("op", "<=")),
                threshold=float(spec["threshold"]),
                labels=tuple(
                    sorted(
                        (str(k), str(v))
                        for k, v in (spec.get("labels") or {}).items()
                    )
                ),
                mode=str(spec.get("mode", "value")),
            )
        except KeyError as missing:
            raise ConfigError(
                f"SLO rule needs a {missing.args[0]!r} field: {spec!r}"
            ) from None

    def describe(self) -> str:
        labels = (
            "{" + ",".join(f"{k}={v}" for k, v in self.labels) + "}"
            if self.labels
            else ""
        )
        suffix = "/epoch" if self.mode == "delta" else ""
        return (
            f"{self.name}: {self.metric}{labels}{suffix} "
            f"{self.op} {self.threshold:g}"
        )


@dataclass
class SLOPolicy:
    """A named set of :class:`SLORule` objectives (JSON-loadable)."""

    rules: list[SLORule] = field(default_factory=list)
    name: str = "accuracy-slo"

    @classmethod
    def from_dict(cls, spec: dict) -> "SLOPolicy":
        rules = spec.get("rules")
        if not isinstance(rules, list) or not rules:
            raise ConfigError(
                "SLO policy needs a non-empty 'rules' list"
            )
        return cls(
            rules=[SLORule.from_dict(rule) for rule in rules],
            name=str(spec.get("name", "accuracy-slo")),
        )

    @classmethod
    def load(cls, path: str | Path) -> "SLOPolicy":
        try:
            spec = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise ConfigError(
                f"cannot load SLO policy from {path}: {error}"
            ) from error
        return cls.from_dict(spec)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "rules": [
                {
                    "name": rule.name,
                    "metric": rule.metric,
                    "op": rule.op,
                    "threshold": rule.threshold,
                    "labels": dict(rule.labels),
                    "mode": rule.mode,
                }
                for rule in self.rules
            ],
        }


@dataclass(frozen=True)
class SLOBreach:
    """One rule failing its objective in one epoch."""

    epoch: int
    rule: str
    metric: str
    op: str
    threshold: float
    value: float

    def describe(self) -> str:
        return (
            f"epoch {self.epoch}: {self.rule} — {self.metric} = "
            f"{self.value:g}, requires {self.op} {self.threshold:g}"
        )


class SLOEngine:
    """Evaluate one :class:`SLOPolicy` against a registry per epoch.

    Rules over metrics that have not been published yet are skipped
    (absence of data is not a breach); ``mode="delta"`` rules keep the
    previous epoch's running value so counters are judged by their
    per-epoch increment.
    """

    def __init__(self, policy: SLOPolicy, registry: MetricsRegistry):
        self.policy = policy
        self.registry = registry
        self.breaches: list[SLOBreach] = []
        self._previous: dict[str, float] = {}

    def _current(self, rule: SLORule) -> float | None:
        if rule.labels:
            return self.registry.value(
                rule.metric, **dict(rule.labels)
            )
        family = self.registry._families.get(rule.metric)
        if family is None:
            return None
        return family.total()

    def evaluate(self, epoch: int) -> list[SLOBreach]:
        """Evaluate every rule once; returns this epoch's breaches."""
        breaches: list[SLOBreach] = []
        counters = self.registry.counter(
            "sketchvisor_slo_evaluations_total",
            "Per-epoch SLO policy evaluations",
        )
        breached = self.registry.counter(
            "sketchvisor_slo_breaches_total",
            "Accuracy-SLO rule breaches, labelled by rule name",
        )
        counters.inc(1)
        for rule in self.policy.rules:
            current = self._current(rule)
            if current is None:
                continue
            value = current
            if rule.mode == "delta":
                value = current - self._previous.get(rule.name, 0.0)
                self._previous[rule.name] = current
            if not _OPS[rule.op](value, rule.threshold):
                breach = SLOBreach(
                    epoch=epoch,
                    rule=rule.name,
                    metric=rule.metric,
                    op=rule.op,
                    threshold=rule.threshold,
                    value=value,
                )
                breaches.append(breach)
                breached.inc(1, rule=rule.name)
        self.breaches.extend(breaches)
        return breaches


# ----------------------------------------------------------------------
# Pipeline-facing facade
# ----------------------------------------------------------------------
class AccuracyObserver:
    """Everything the pipeline needs to watch its own accuracy.

    Owns the optional shadow sampler and SLO engine, publishes the
    theoretical-bound and empirical gauges each epoch, records SLO
    breaches into the telemetry's flight recorder, and auto-dumps the
    recorder when configured.
    """

    def __init__(
        self,
        telemetry,
        policy: SLOPolicy | None = None,
        shadow_samples: int = 0,
        seed: int = 1,
        recorder_path: str | Path | None = None,
    ):
        self.telemetry = telemetry
        self.sampler = (
            ShadowSampler(shadow_samples, seed=seed)
            if shadow_samples > 0
            else None
        )
        self.engine = (
            SLOEngine(policy, telemetry.registry)
            if policy is not None
            else None
        )
        self.recorder_path = recorder_path

    def observe_trace(self, trace) -> None:
        """Refresh the shadow sample for the epoch about to run."""
        if self.sampler is not None:
            self.sampler.observe_trace(trace)

    def observe_epoch(
        self, result, task, epoch: int
    ) -> list[SLOBreach]:
        """Publish accuracy telemetry for one finished epoch and
        evaluate the SLO policy; returns (and records) any breaches."""
        registry = self.telemetry.registry
        network = result.network
        publish_error_bounds(registry, network, result.reports)
        bound = sketch_error_bound(network.sketch)
        if self.sampler is not None:
            comparison = self.sampler.compare(
                network,
                answer=result.answer,
                hh_threshold=getattr(task, "threshold", None),
                bound_bytes=bound[0] if bound else None,
            )
            publish_shadow_comparison(registry, comparison)
        if self.engine is None:
            return []
        breaches = self.engine.evaluate(epoch)
        recorder = getattr(self.telemetry, "recorder", None)
        if breaches and recorder is not None:
            for breach in breaches:
                recorder.record(
                    "slo_breach",
                    epoch=epoch,
                    rule=breach.rule,
                    metric=breach.metric,
                    value=breach.value,
                    threshold=breach.threshold,
                    op=breach.op,
                )
            self.maybe_dump("slo_breach")
        return breaches

    def maybe_dump(self, reason: str) -> Path | None:
        """Dump the flight recorder if a dump path is configured."""
        recorder = getattr(self.telemetry, "recorder", None)
        if recorder is None or self.recorder_path is None:
            return None
        return recorder.dump(self.recorder_path, reason=reason)
