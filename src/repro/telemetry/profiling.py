"""Cycle-level performance observability for the pipeline.

SketchVisor's design is a CPU-budget argument — the fast path exists
because per-packet cycles in a software switch are the scarce resource
— so the reproduction needs to *see* where an epoch's cycles go, not
just its end-to-end wall time.  Three cooperating pieces, all gated
behind :class:`ProfileConfig` / ``REPRO_PROFILE`` and costing nothing
when off:

* **stage timers** — every :func:`repro.telemetry.trace_span` site
  becomes a wall (``perf_counter_ns``) + CPU (``process_time_ns``)
  accounting stage when a profiler is attached; hot loops credit
  sub-stages (fast-path top-k, vectorized sketch updates, hashing)
  through :meth:`Profiler.add` without opening a span per packet.
  Stage totals export as histogram metrics
  (:func:`repro.telemetry.publish.publish_profile_epoch`) and inline
  sub-stages materialize as synthetic children in the Chrome trace;
* a **sampling profiler** — a daemon thread walks the profiled
  thread's Python stack at a configurable rate
  (``sys._current_frames``; no signals, so it is safe under pytest and
  inside pool workers) and aggregates collapsed stacks per stage,
  ready for ``.folded`` dumps and the flamegraph renderer in
  :mod:`repro.dash`;
* **memory high-water tracking** — per-process RSS gauges from
  ``/proc/self/statm`` (``getrusage`` fallback) plus opt-in
  ``tracemalloc`` top-N allocation sites.

Profilers are per-process: a process-pool worker builds its own,
serializes it with :meth:`Profiler.to_payload`, and the parent merges
the payload (stages summed, folded stacks summed, RSS kept per pid,
spans absorbed onto the parent timeline with the worker's pid/tid) —
the same central-aggregation contract the metric counters follow.

Determinism contract: profiling only *observes*.  Wrapped hash methods
call the originals unchanged, stage timers never reorder work, and the
sampler only reads frames — a profiled run is bit-identical to an
unprofiled one.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.telemetry.tracer import Span, Tracer

__all__ = [
    "ProfileConfig",
    "Profiler",
    "StackSampler",
    "epoch_attribution",
    "profile_from_env",
    "write_folded",
]

#: Maximum frames kept per collapsed stack sample.
_MAX_STACK_DEPTH = 64

#: The profiler whose stage stack the hash instrumentation credits.
#: Module-global so wrapped :class:`HashFamily` methods resolve it in
#: one load; ``None`` whenever no stage is open anywhere.
_ACTIVE: "Profiler | None" = None

#: Refcount of installed hash-method wrappers (nested activations).
_HASH_INSTALLS = 0
_HASH_ORIGINALS: dict[str, object] = {}

#: HashFamily methods instrumented while a profiler is active.  The
#: scalar per-key entry points and the vectorized array entry points
#: both appear, so scalar and batch engines attribute hashing alike.
_HASH_METHODS = (
    "hash_value",
    "bucket",
    "buckets",
    "sign",
    "signs",
    "uniform01",
    "hash_values_array",
    "buckets_array",
    "signs_array",
)


@dataclass
class ProfileConfig:
    """Knobs of the profiling subsystem (presence = enabled).

    Stage timers are always on while a config is attached; the stack
    sampler and tracemalloc ride on top.
    """

    #: Stack-sampler rate; 0 disables sampling (stage timers remain).
    #: 97 Hz — prime, so it does not phase-lock with periodic work.
    sample_hz: float = 97.0
    #: Track allocation sites with ``tracemalloc`` (expensive: ~2x on
    #: allocation-heavy code, so opt-in even within profiling).
    memory: bool = False
    #: Allocation sites kept per epoch when ``memory`` is on.
    memory_top: int = 10


def profile_from_env() -> ProfileConfig | None:
    """A :class:`ProfileConfig` when ``REPRO_PROFILE`` is set.

    Recognizes any non-empty value except ``0``; ``REPRO_PROFILE_HZ``
    overrides the sampler rate (0 disables sampling) and
    ``REPRO_PROFILE_MEMORY=1`` opts into tracemalloc.
    """
    flag = os.environ.get("REPRO_PROFILE", "")
    if not flag or flag == "0":
        return None
    config = ProfileConfig()
    hz = os.environ.get("REPRO_PROFILE_HZ", "")
    try:
        config.sample_hz = float(hz) if hz else config.sample_hz
    except ValueError:
        pass
    memory = os.environ.get("REPRO_PROFILE_MEMORY", "")
    config.memory = bool(memory) and memory != "0"
    return config


class _StageFrame:
    """One open stage on the profiler's stack."""

    __slots__ = ("name", "inline")

    def __init__(self, name: str) -> None:
        self.name = name
        #: Inline sub-stage credits: name -> [wall_ns, count].
        self.inline: dict[str, list[int]] = {}


class StackSampler:
    """Thread-based stack sampler for one target thread.

    Wakes every ``1/hz`` seconds, reads the target thread's current
    Python frame via ``sys._current_frames()``, and counts the
    collapsed stack under the profiler's open stage.  Sampling only
    happens while a stage is open, so idle time between epochs costs
    one clock read per tick.
    """

    def __init__(self, profiler: "Profiler", hz: float) -> None:
        self.profiler = profiler
        self.interval = 1.0 / max(hz, 1e-3)
        self._target_tid = threading.get_ident()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None

    def _run(self) -> None:
        profiler = self.profiler
        while not self._stop.wait(self.interval):
            stack = profiler._stack
            if not stack:
                continue
            try:
                stage = stack[-1].name
            except IndexError:  # stage closed between checks
                continue
            frame = sys._current_frames().get(self._target_tid)
            if frame is None:
                continue
            names: list[str] = []
            while frame is not None and len(names) < _MAX_STACK_DEPTH:
                code = frame.f_code
                names.append(
                    f"{Path(code.co_filename).stem}:{code.co_name}"
                )
                frame = frame.f_back
            names.reverse()
            key = ";".join([stage, *names])
            folded = profiler.folded
            folded[key] = folded.get(key, 0) + 1
            profiler.sample_counts[stage] = (
                profiler.sample_counts.get(stage, 0) + 1
            )


def _wrap_hash_method(name: str, original):
    def wrapped(self, *args, **kwargs):
        profiler = _ACTIVE
        if profiler is None:
            return original(self, *args, **kwargs)
        t0 = time.perf_counter_ns()
        try:
            return original(self, *args, **kwargs)
        finally:
            profiler.add("hashing", time.perf_counter_ns() - t0)

    wrapped.__name__ = original.__name__
    wrapped.__doc__ = original.__doc__
    wrapped.__wrapped__ = original
    return wrapped


def _install_hash_instrumentation() -> None:
    global _HASH_INSTALLS
    _HASH_INSTALLS += 1
    if _HASH_INSTALLS > 1:
        return
    from repro.common.hashing import HashFamily

    for name in _HASH_METHODS:
        original = getattr(HashFamily, name)
        _HASH_ORIGINALS[name] = original
        setattr(HashFamily, name, _wrap_hash_method(name, original))


def _uninstall_hash_instrumentation() -> None:
    global _HASH_INSTALLS
    if _HASH_INSTALLS == 0:
        return
    _HASH_INSTALLS -= 1
    if _HASH_INSTALLS:
        return
    from repro.common.hashing import HashFamily

    for name, original in _HASH_ORIGINALS.items():
        setattr(HashFamily, name, original)
    _HASH_ORIGINALS.clear()


def _read_rss_bytes() -> int:
    """Current resident set size of this process, in bytes."""
    try:
        with open("/proc/self/statm") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        try:
            import resource

            # ru_maxrss is KiB on Linux (bytes on macOS; close enough
            # for a high-water gauge on the fallback path).
            return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
        except Exception:
            return 0


class Profiler:
    """Per-process stage accounting + sampling + memory high-water.

    One profiler serves one :class:`~repro.telemetry.Telemetry`
    instance; it opens tracer spans for every stage (so profiling and
    tracing stay one tree) and publishes per-epoch stage histograms
    when the outermost stage closes.
    """

    def __init__(
        self, telemetry, config: ProfileConfig | None = None
    ) -> None:
        self.telemetry = telemetry
        self.config = config or ProfileConfig()
        #: Cumulative stage totals: name -> [wall_ns, cpu_ns, count].
        self.stages: dict[str, list[int]] = {}
        #: Collapsed stacks: "stage;frame;..." -> sample count.
        self.folded: dict[str, int] = {}
        #: Samples attributed per stage (sampler bookkeeping).
        self.sample_counts: dict[str, int] = {}
        #: RSS high-water per contributing process: pid(str) -> bytes.
        self.rss: dict[str, int] = {}
        #: Top allocation sites of the last epoch: [(site, bytes)].
        self.memory_top: list[tuple[str, int]] = []
        self._stack: list[_StageFrame] = []
        self._sampler: StackSampler | None = None
        self._window_base: dict[str, list[int]] = {}
        self._tracemalloc_started = False

    # -- stage timers --------------------------------------------------
    @property
    def current_stage(self) -> str | None:
        return self._stack[-1].name if self._stack else None

    @contextmanager
    def stage(self, name: str, **attrs):
        """Open one named stage (wall + CPU accounting + tracer span)."""
        if not self._stack:
            self._activate()
        tracer: Tracer = self.telemetry.tracer
        index = len(tracer.spans)
        frame = _StageFrame(name)
        self._stack.append(frame)
        cpu0 = time.process_time_ns()
        wall0 = time.perf_counter_ns()
        try:
            with tracer.span(name, **attrs) as span:
                yield span
        finally:
            wall = time.perf_counter_ns() - wall0
            cpu = time.process_time_ns() - cpu0
            self._stack.pop()
            stat = self.stages.setdefault(name, [0, 0, 0])
            stat[0] += wall
            stat[1] += cpu
            stat[2] += 1
            if frame.inline:
                self._materialize_inline(frame, tracer, index)
            if not self._stack:
                self._deactivate()

    def add(self, name: str, wall_ns: int, count: int = 1) -> None:
        """Credit inline-accumulated work to the open stage.

        Hot loops call this once per batch (or per packet, against a
        locally hoisted clock) instead of opening a span: the credit
        lands in :attr:`stages` and becomes a synthetic child span of
        the enclosing stage when it closes.  A credit with no open
        stage is dropped — it has nothing to attach to.
        """
        if not self._stack:
            return
        inline = self._stack[-1].inline
        entry = inline.get(name)
        if entry is None:
            inline[name] = [wall_ns, count]
        else:
            entry[0] += wall_ns
            entry[1] += count

    def _materialize_inline(
        self, frame: _StageFrame, tracer: Tracer, index: int
    ) -> None:
        parent = tracer.spans[index]
        for child_name, (wall_ns, count) in frame.inline.items():
            stat = self.stages.setdefault(child_name, [0, 0, 0])
            stat[0] += wall_ns
            # Inline credits are wall-clock only; hot single-threaded
            # loops are CPU-bound, so wall is the best CPU estimate.
            stat[1] += wall_ns
            stat[2] += count
            tracer.spans.append(
                Span(
                    name=child_name,
                    start=parent.start,
                    duration=wall_ns / 1e9,
                    depth=parent.depth + 1,
                    parent=index,
                    attrs={"aggregated": count},
                    pid=tracer.pid,
                    tid=parent.tid,
                )
            )

    # -- activation lifecycle ------------------------------------------
    def _activate(self) -> None:
        global _ACTIVE
        _ACTIVE = self
        _install_hash_instrumentation()
        self._window_base = {
            name: list(stat) for name, stat in self.stages.items()
        }
        if self.config.sample_hz > 0:
            self._sampler = StackSampler(self, self.config.sample_hz)
            self._sampler.start()
        if self.config.memory and not self._tracemalloc_started:
            import tracemalloc

            tracemalloc.start()
            self._tracemalloc_started = True

    def _deactivate(self) -> None:
        global _ACTIVE
        if _ACTIVE is self:
            _ACTIVE = None
        _uninstall_hash_instrumentation()
        if self._sampler is not None:
            self._sampler.stop()
            self._sampler = None
        self.rss[str(os.getpid())] = max(
            self.rss.get(str(os.getpid()), 0), _read_rss_bytes()
        )
        if self._tracemalloc_started:
            import tracemalloc

            snapshot = tracemalloc.take_snapshot()
            stats = snapshot.statistics("lineno")
            self.memory_top = [
                (str(stat.traceback), stat.size)
                for stat in stats[: self.config.memory_top]
            ]
            tracemalloc.stop()
            self._tracemalloc_started = False
        self._publish_window()

    def _publish_window(self) -> None:
        from repro.telemetry.publish import publish_profile_epoch

        deltas: dict[str, tuple[float, float]] = {}
        for name, stat in self.stages.items():
            base = self._window_base.get(name, [0, 0, 0])
            wall = (stat[0] - base[0]) / 1e9
            cpu = (stat[1] - base[1]) / 1e9
            if wall > 0 or cpu > 0:
                deltas[name] = (wall, cpu)
        self._window_base = {}
        publish_profile_epoch(
            self.telemetry.registry, deltas, self.rss
        )

    def close(self) -> None:
        """Stop the sampler thread if a stage body leaked an exception
        past the activation window (defensive; normally a no-op)."""
        if self._sampler is not None:
            self._sampler.stop()
            self._sampler = None

    # -- views ---------------------------------------------------------
    def stage_table(self) -> dict[str, dict[str, float]]:
        """Cumulative per-stage totals in seconds, for reports."""
        return {
            name: {
                "wall_seconds": stat[0] / 1e9,
                "cpu_seconds": stat[1] / 1e9,
                "count": stat[2],
            }
            for name, stat in sorted(
                self.stages.items(), key=lambda kv: -kv[1][0]
            )
        }

    # -- worker aggregation --------------------------------------------
    def to_payload(self) -> dict:
        """JSON-able state for the worker→parent merge."""
        return {
            "pid": os.getpid(),
            "stages": {
                name: list(stat) for name, stat in self.stages.items()
            },
            "folded": dict(self.folded),
            "sample_counts": dict(self.sample_counts),
            "rss": dict(self.rss),
            "memory_top": list(self.memory_top),
            "spans": self.telemetry.tracer.span_rows(),
            "origin": self.telemetry.tracer.origin,
        }

    def merge_payload(
        self, payload: dict, parent_span: Span | None = None
    ) -> None:
        """Fold one worker profiler's payload into this one.

        Stage totals and folded stacks sum; RSS stays keyed by the
        worker's pid; worker spans land under ``parent_span`` on the
        parent timeline with the worker's pid/tid preserved.
        """
        for name, stat in payload.get("stages", {}).items():
            mine = self.stages.setdefault(name, [0, 0, 0])
            mine[0] += stat[0]
            mine[1] += stat[1]
            mine[2] += stat[2]
        for key, count in payload.get("folded", {}).items():
            self.folded[key] = self.folded.get(key, 0) + count
        for stage, count in payload.get("sample_counts", {}).items():
            self.sample_counts[stage] = (
                self.sample_counts.get(stage, 0) + count
            )
        for pid, rss in payload.get("rss", {}).items():
            self.rss[pid] = max(self.rss.get(pid, 0), rss)
        if payload.get("memory_top"):
            self.memory_top.extend(
                tuple(item) for item in payload["memory_top"]
            )
        self.telemetry.tracer.absorb(
            payload.get("spans", []),
            origin=payload.get("origin"),
            parent=parent_span,
        )


def epoch_attribution(tracer: Tracer, root: str = "epoch") -> float:
    """Fraction of the root span's wall time its children account for.

    The acceptance bar for stage attribution: on the bench workload the
    direct children of the ``epoch`` span must cover >= 90% of its
    duration.  Returns 0.0 when no closed root span exists; multiple
    root spans average.
    """
    fractions = []
    for index, span in enumerate(tracer.spans):
        if span.name != root or span.duration <= 0:
            continue
        covered = sum(
            child.duration
            for child in tracer.spans
            if child.parent == index
        )
        fractions.append(min(covered / span.duration, 1.0))
    if not fractions:
        return 0.0
    return sum(fractions) / len(fractions)


def write_folded(
    folded: dict[str, int], destination: str | Path
) -> Path:
    """Write collapsed stacks in the standard ``.folded`` format
    (``frame;frame;frame count`` per line), consumable by any
    flamegraph tool as well as :func:`repro.dash.flamegraph_svg`."""
    path = Path(destination)
    lines = [
        f"{key} {count}"
        for key, count in sorted(folded.items())
    ]
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path
