"""Span-based tracing for the per-epoch pipeline stages.

A :class:`Tracer` records wall-time spans with nesting — one span per
pipeline stage (``epoch`` → ``dataplane`` → ``recovery.lens`` …) — via
a context manager that costs two ``perf_counter`` calls per stage.
Spans render as an indented stage-timing tree
(:func:`repro.reporting.span_tree`) or export as Chrome trace-event
JSON loadable in ``chrome://tracing`` / Perfetto for flamegraph
inspection.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Span:
    """One timed pipeline stage."""

    name: str
    start: float  # seconds since the tracer's origin
    duration: float  # seconds; 0.0 while still open
    depth: int
    parent: int | None  # index of the enclosing span, None for roots
    attrs: dict = field(default_factory=dict)
    #: Process/thread that recorded the span.  Spans absorbed from
    #: process-pool workers keep the worker's ids, so Chrome-trace
    #: viewers render each host on its own lane.
    pid: int = 0
    tid: int = 0

    @property
    def open(self) -> bool:
        return self.duration == 0.0 and self.end is None

    @property
    def end(self) -> float | None:
        return None if self.duration == 0.0 else self.start + self.duration


class Tracer:
    """Records nested wall-time spans in start order."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._stack: list[int] = []
        self._origin = time.perf_counter()
        self.pid = os.getpid()

    @property
    def origin(self) -> float:
        """Absolute ``perf_counter`` value of span-time zero.

        On Linux ``perf_counter`` is CLOCK_MONOTONIC, shared across
        processes, so worker spans rebase onto the parent's timeline by
        shifting with the difference of origins (:meth:`absorb`).
        """
        return self._origin

    @contextmanager
    def span(self, name: str, **attrs):
        """Time a stage: ``with tracer.span("recovery.lens", epoch=3):``."""
        start = time.perf_counter()
        index = len(self.spans)
        record = Span(
            name=name,
            start=start - self._origin,
            duration=0.0,
            depth=len(self._stack),
            parent=self._stack[-1] if self._stack else None,
            attrs=attrs,
            pid=self.pid,
            tid=threading.get_native_id(),
        )
        self.spans.append(record)
        self._stack.append(index)
        try:
            yield record
        finally:
            record.duration = time.perf_counter() - start
            self._stack.pop()

    # ------------------------------------------------------------------
    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self.spans[self._stack[-1]] if self._stack else None

    def tree_rows(self) -> list[tuple[int, str, float, dict]]:
        """``(depth, name, seconds, attrs)`` rows for reporting."""
        return [
            (span.depth, span.name, span.duration, span.attrs)
            for span in self.spans
        ]

    def roots(self) -> list[Span]:
        return [span for span in self.spans if span.parent is None]

    def children(self, parent: Span) -> list[Span]:
        parent_index = self.spans.index(parent)
        return [
            span for span in self.spans if span.parent == parent_index
        ]

    def span_rows(self) -> list[dict]:
        """JSON-able span dicts (the worker→parent wire format)."""
        return [
            {
                "name": span.name,
                "start": span.start,
                "duration": span.duration,
                "depth": span.depth,
                "parent": span.parent,
                "attrs": {k: str(v) for k, v in span.attrs.items()},
                "pid": span.pid,
                "tid": span.tid,
            }
            for span in self.spans
        ]

    def absorb(
        self,
        rows: list[dict],
        origin: float | None = None,
        parent: Span | None = None,
    ) -> None:
        """Append spans recorded by another tracer (e.g. a pool worker).

        ``rows`` is the other tracer's :meth:`span_rows`; ``origin`` its
        absolute :attr:`origin`, used to rebase starts onto this
        tracer's timeline (falls back to no shift when clocks are not
        comparable); ``parent`` roots the absorbed tree under one of
        this tracer's existing spans.  Absorbed spans keep their
        recording pid/tid, which is what separates worker lanes in the
        Chrome-trace export.
        """
        shift = 0.0 if origin is None else origin - self._origin
        base = len(self.spans)
        parent_index = (
            self.spans.index(parent) if parent is not None else None
        )
        base_depth = parent.depth + 1 if parent is not None else 0
        for row in rows:
            self.spans.append(
                Span(
                    name=row["name"],
                    start=row["start"] + shift,
                    duration=row["duration"],
                    depth=row["depth"] + base_depth,
                    parent=(
                        base + row["parent"]
                        if row.get("parent") is not None
                        else parent_index
                    ),
                    attrs=dict(row.get("attrs", {})),
                    pid=row.get("pid", 0),
                    tid=row.get("tid", 0),
                )
            )

    def chrome_trace(self) -> dict:
        """Chrome trace-event JSON (``chrome://tracing`` "complete" events).

        Timestamps and durations are microseconds relative to the
        tracer's origin.  Spans carry the pid/tid that recorded them,
        so multi-process epochs render as parallel lanes while the
        nesting within each lane still reads as a flamegraph.
        """
        events = []
        for span in self.spans:
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": span.pid,
                    "tid": span.tid,
                    "args": {
                        key: str(value)
                        for key, value in span.attrs.items()
                    },
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def reset(self) -> None:
        self.spans.clear()
        self._stack.clear()
        self._origin = time.perf_counter()
