"""Span-based tracing for the per-epoch pipeline stages.

A :class:`Tracer` records wall-time spans with nesting — one span per
pipeline stage (``epoch`` → ``dataplane`` → ``recovery.lens`` …) — via
a context manager that costs two ``perf_counter`` calls per stage.
Spans render as an indented stage-timing tree
(:func:`repro.reporting.span_tree`) or export as Chrome trace-event
JSON loadable in ``chrome://tracing`` / Perfetto for flamegraph
inspection.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Span:
    """One timed pipeline stage."""

    name: str
    start: float  # seconds since the tracer's origin
    duration: float  # seconds; 0.0 while still open
    depth: int
    parent: int | None  # index of the enclosing span, None for roots
    attrs: dict = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.duration == 0.0 and self.end is None

    @property
    def end(self) -> float | None:
        return None if self.duration == 0.0 else self.start + self.duration


class Tracer:
    """Records nested wall-time spans in start order."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._stack: list[int] = []
        self._origin = time.perf_counter()

    @contextmanager
    def span(self, name: str, **attrs):
        """Time a stage: ``with tracer.span("recovery.lens", epoch=3):``."""
        start = time.perf_counter()
        index = len(self.spans)
        record = Span(
            name=name,
            start=start - self._origin,
            duration=0.0,
            depth=len(self._stack),
            parent=self._stack[-1] if self._stack else None,
            attrs=attrs,
        )
        self.spans.append(record)
        self._stack.append(index)
        try:
            yield record
        finally:
            record.duration = time.perf_counter() - start
            self._stack.pop()

    # ------------------------------------------------------------------
    def tree_rows(self) -> list[tuple[int, str, float, dict]]:
        """``(depth, name, seconds, attrs)`` rows for reporting."""
        return [
            (span.depth, span.name, span.duration, span.attrs)
            for span in self.spans
        ]

    def roots(self) -> list[Span]:
        return [span for span in self.spans if span.parent is None]

    def children(self, parent: Span) -> list[Span]:
        parent_index = self.spans.index(parent)
        return [
            span for span in self.spans if span.parent == parent_index
        ]

    def chrome_trace(self) -> dict:
        """Chrome trace-event JSON (``chrome://tracing`` "complete" events).

        Timestamps and durations are microseconds relative to the
        tracer's origin; all spans share one pid/tid so the viewer
        renders the nesting as a flamegraph.
        """
        events = []
        for span in self.spans:
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": 0,
                    "tid": 0,
                    "args": {
                        key: str(value)
                        for key, value in span.attrs.items()
                    },
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def reset(self) -> None:
        self.spans.clear()
        self._stack.clear()
        self._origin = time.perf_counter()
