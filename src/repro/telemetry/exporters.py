"""Telemetry exporters: Prometheus text exposition and JSON snapshots.

Both walk a :class:`~repro.telemetry.registry.MetricsRegistry` without
mutating it, so exporting mid-run is safe.  The Prometheus format
follows the text exposition conventions (``# HELP`` / ``# TYPE`` lines,
``_bucket{le=...}`` / ``_sum`` / ``_count`` for histograms, escaped
label values) and can be served from a file by any node-exporter-style
sidecar: label values are escaped (backslash, double quote, newline),
label names validated, and ``# HELP`` / ``# TYPE`` emitted exactly once
per family, so a scrape never chokes on adversarial label content.
"""

from __future__ import annotations

import json
import math
import re
import sys
from pathlib import Path

from repro.common.errors import ConfigError
from repro.telemetry.registry import Histogram, MetricsRegistry
from repro.telemetry.tracer import Tracer

#: Prometheus label-name grammar (no colons, unlike metric names).
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    """Escape per the exposition grammar: ``\\`` ``"`` and newline."""
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """HELP text escapes backslash and newline (quotes are legal)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    for key in labels:
        if not LABEL_NAME_RE.match(key):
            raise ConfigError(
                f"invalid Prometheus label name {key!r}: must match "
                f"{LABEL_NAME_RE.pattern}"
            )
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format."""
    lines: list[str] = []
    described: set[str] = set()
    for family in registry.families():
        if family.name not in described:
            described.add(family.name)
            if family.help:
                lines.append(
                    f"# HELP {family.name} {_escape_help(family.help)}"
                )
            lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, child in family.samples():
            if isinstance(child, Histogram):
                cumulative = 0
                for bound, count in zip(
                    list(child.bounds) + [float("inf")],
                    child.bucket_counts,
                ):
                    cumulative += count
                    bucket_labels = dict(labels, le=_format_value(bound))
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_format_labels(bucket_labels)} {cumulative}"
                    )
                lines.append(
                    f"{family.name}_sum{_format_labels(labels)} "
                    f"{_format_value(child.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_format_labels(labels)} "
                    f"{child.count}"
                )
            else:
                lines.append(
                    f"{family.name}{_format_labels(labels)} "
                    f"{_format_value(child.value)}"
                )
    return "\n".join(lines) + "\n"


def json_snapshot(
    registry: MetricsRegistry, tracer: Tracer | None = None
) -> dict:
    """A JSON-able snapshot: all metrics, plus span rows if given."""
    snapshot: dict = {"metrics": registry.snapshot()}
    if tracer is not None:
        snapshot["spans"] = [
            {
                "name": span.name,
                "start": span.start,
                "duration": span.duration,
                "depth": span.depth,
                "parent": span.parent,
                "attrs": {k: str(v) for k, v in span.attrs.items()},
            }
            for span in tracer.spans
        ]
    return snapshot


def _write(text: str, destination: str | Path | None) -> None:
    """Write to a path, or stdout for ``None`` / ``"-"``."""
    if destination is None or str(destination) == "-":
        sys.stdout.write(text)
    else:
        Path(destination).write_text(text)


def write_prometheus(
    registry: MetricsRegistry, destination: str | Path | None = None
) -> None:
    """Dump Prometheus text to a file, or stdout for ``None`` / ``"-"``."""
    _write(prometheus_text(registry), destination)


def write_json_snapshot(
    registry: MetricsRegistry,
    destination: str | Path | None = None,
    tracer: Tracer | None = None,
) -> None:
    """Dump the JSON snapshot to a file, or stdout for ``None`` / ``"-"``."""
    _write(
        json.dumps(json_snapshot(registry, tracer), indent=2) + "\n",
        destination,
    )


def write_chrome_trace(
    tracer: Tracer, destination: str | Path
) -> None:
    """Dump ``chrome://tracing``-loadable trace-event JSON."""
    _write(json.dumps(tracer.chrome_trace(), indent=2) + "\n", destination)
