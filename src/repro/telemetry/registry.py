"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Prometheus-flavoured semantics, sized for a hot simulation loop:

* a *family* is a named metric with a help string; `labels(...)` binds a
  label set and returns the *child* holding the actual value;
* children are cached by label tuple, so steady-state publishing is a
  dict hit plus a float add — no allocation, no string formatting;
* histograms use fixed upper bounds chosen at registration, so an
  ``observe`` is a linear scan over a handful of floats.

The registry itself is a plain ordered dict of families; exporters
(:mod:`repro.telemetry.exporters`) walk it to produce Prometheus text
exposition or JSON snapshots.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from collections.abc import Iterator, Sequence

from repro.common.errors import ConfigError

#: Prometheus metric-name grammar; enforced at registration so a bad
#: name fails where it is introduced, not in the scrape endpoint.
METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Quantiles surfaced in snapshots and summaries.
SUMMARY_QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)

#: Default histogram upper bounds: log-spaced from sub-millisecond to
#: tens of units — suitable for both second-scale wall times and small
#: iteration counts.  Families that know their range pass their own.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value (one label set of a family)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can move both ways (one label set of a family)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def set_max(self, value: float) -> None:
        """High-water-mark update: keep the larger of old and new."""
        if value > self.value:
            self.value = float(value)


class Histogram:
    """Fixed-bucket cumulative histogram (one label set of a family)."""

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +Inf last
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def value(self) -> float:
        """Mean observation — the scalar summary used in snapshots."""
        if self.count == 0:
            return 0.0
        return self.sum / self.count

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the cumulative buckets.

        Standard Prometheus-style interpolation: find the bucket the
        rank lands in, interpolate linearly within it.  Observations in
        the +Inf bucket clamp to the last finite bound (there is no
        upper edge to interpolate toward), matching PromQL's
        ``histogram_quantile``.  Returns 0.0 with no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count > 0:
                if index >= len(self.bounds):
                    return float(
                        self.bounds[-1] if self.bounds else 0.0
                    )
                upper = self.bounds[index]
                lower = self.bounds[index - 1] if index > 0 else 0.0
                fraction = (
                    rank - (cumulative - bucket_count)
                ) / bucket_count
                return lower + (upper - lower) * min(
                    max(fraction, 0.0), 1.0
                )
        return float(self.bounds[-1] if self.bounds else 0.0)

    def quantiles(
        self, qs: Sequence[float] = SUMMARY_QUANTILES
    ) -> dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` summary dict."""
        return {f"p{round(q * 100):d}": self.quantile(q) for q in qs}


class MetricFamily:
    """A named metric plus its per-label-set children."""

    def __init__(self, name: str, kind: str, help: str = ""):
        self.name = name
        self.kind = kind
        self.help = help
        self._children: dict[LabelKey, object] = {}
        # Guards the children dict against concurrent label binding
        # and iteration; a registry shares its own lock with every
        # family it creates so exporters see a coherent snapshot.
        self._lock = threading.RLock()

    # Subclasses set this to the child class.
    _child_type: type = object

    def _make_child(self):
        return self._child_type()

    def labels(self, **labels):
        """The child for this label set (created on first use)."""
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    def samples(self) -> Iterator[tuple[dict[str, str], object]]:
        """Yield ``(labels, child)`` pairs in insertion order."""
        with self._lock:
            items = list(self._children.items())
        for key, child in items:
            yield dict(key), child

    def total(self) -> float:
        """Sum of all children's scalar values (tests, summaries)."""
        with self._lock:
            children = list(self._children.values())
        return sum(child.value for child in children)


class CounterFamily(MetricFamily):
    _child_type = Counter

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, "counter", help)

    def inc(self, amount: float = 1.0, **labels) -> None:
        self.labels(**labels).inc(amount)


class GaugeFamily(MetricFamily):
    _child_type = Gauge

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, "gauge", help)

    def set(self, value: float, **labels) -> None:
        self.labels(**labels).set(value)

    def set_max(self, value: float, **labels) -> None:
        self.labels(**labels).set_max(value)


class HistogramFamily(MetricFamily):
    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, "histogram", help)
        bounds = tuple(buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ConfigError("histogram buckets must strictly increase")
        self._bounds = bounds

    def _make_child(self) -> Histogram:
        return Histogram(self._bounds)

    def observe(self, value: float, **labels) -> None:
        self.labels(**labels).observe(value)


class MetricsRegistry:
    """All metric families of one telemetry domain.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call registers the family, later calls return it (and reject kind
    mismatches), so publishers can resolve families wherever they run.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        # One lock for the whole registry, shared with every family it
        # creates: a scrape thread walking ``families()`` while an
        # epoch thread registers new families (or binds new label
        # sets) must never see a dict mutate mid-iteration.
        self._lock = threading.RLock()

    # -- registration --------------------------------------------------
    def _get_or_create(self, name: str, kind: str, factory) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            if not METRIC_NAME_RE.match(name):
                raise ConfigError(
                    f"invalid metric name {name!r}: must match "
                    f"{METRIC_NAME_RE.pattern}"
                )
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = factory()
                    family._lock = self._lock
                    self._families[name] = family
        if family.kind != kind:
            raise ConfigError(
                f"metric {name!r} already registered as {family.kind}, "
                f"not {kind}"
            )
        return family

    def counter(self, name: str, help: str = "") -> CounterFamily:
        return self._get_or_create(
            name, "counter", lambda: CounterFamily(name, help)
        )

    def gauge(self, name: str, help: str = "") -> GaugeFamily:
        return self._get_or_create(
            name, "gauge", lambda: GaugeFamily(name, help)
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> HistogramFamily:
        return self._get_or_create(
            name, "histogram", lambda: HistogramFamily(name, help, buckets)
        )

    # -- access --------------------------------------------------------
    def families(self) -> Iterator[MetricFamily]:
        with self._lock:
            families = list(self._families.values())
        yield from families

    def value(self, name: str, **labels) -> float | None:
        """One child's scalar value, or None if never published."""
        family = self._families.get(name)
        if family is None:
            return None
        key = _label_key(labels)
        child = family._children.get(key)
        if child is None:
            return None
        return child.value

    def total(self, name: str) -> float:
        """Sum across all label sets of a family (0.0 if unknown)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        return family.total()

    def snapshot(self) -> dict:
        """A JSON-able dump of every family and child."""
        out: dict = {}
        for family in self.families():
            entries = []
            for labels, child in family.samples():
                entry: dict = {"labels": labels}
                if isinstance(child, Histogram):
                    entry.update(
                        sum=child.sum,
                        count=child.count,
                        quantiles=child.quantiles(),
                        buckets=[
                            {"le": bound, "count": count}
                            for bound, count in zip(
                                list(child.bounds) + [float("inf")],
                                child.bucket_counts,
                            )
                        ],
                    )
                else:
                    entry["value"] = child.value
                entries.append(entry)
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "samples": entries,
            }
        return out

    def reset(self) -> None:
        with self._lock:
            self._families.clear()
