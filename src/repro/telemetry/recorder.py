"""Flight recorder: a bounded ring buffer of structured events.

Metrics answer "how much"; the recorder answers "what just happened".
Every notable pipeline event — buffer high-water crossings, fast-path
kick-out storms, injected faults, checkpoint/restore cycles, collector
retries, SLO breaches — is appended as a small structured record into a
fixed-capacity ring (a :class:`collections.deque`), so steady state
costs one deque append and old events age out for free.

On a trigger (crash, quarantine, or accuracy-SLO breach) the ring is
dumped to a JSON artifact: the last ``capacity`` events leading up to
the trigger, newest last — the black box an operator opens after the
incident.  See ``docs/observability.md`` for the dump schema.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

#: Ring capacity: enough to hold several epochs of event flow without
#: the dump artifact growing past a few hundred KB.
DEFAULT_CAPACITY = 512

#: Schema version stamped into every dump.
DUMP_VERSION = 1


@dataclass(frozen=True)
class RecorderEvent:
    """One structured event in the ring."""

    seq: int
    time: float  # wall-clock seconds (time.time)
    kind: str
    epoch: int | None = None
    fields: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        record: dict = {
            "seq": self.seq,
            "time": self.time,
            "kind": self.kind,
        }
        if self.epoch is not None:
            record["epoch"] = self.epoch
        record.update(self.fields)
        return record


class FlightRecorder:
    """Fixed-capacity event ring with JSON dump-on-trigger.

    Parameters
    ----------
    capacity:
        Maximum events retained; older events are evicted FIFO.
    max_dumps:
        ``None`` (the default) writes every dump to the exact path it
        was asked for, overwriting prior incidents — the historical
        batch behavior, where CI uploads the artifact immediately.
        An integer switches to *rotation*: each dump gets a
        timestamp/sequence/reason-suffixed filename derived from the
        requested path, and the oldest rotated siblings are swept so
        at most ``max_dumps`` artifacts remain.  A long-running
        ``repro serve`` process under repeated SLO breaches keeps the
        most recent N incident dumps instead of just the last one.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        max_dumps: int | None = None,
    ):
        self.capacity = max(1, int(capacity))
        self._ring: deque[RecorderEvent] = deque(maxlen=self.capacity)
        self._seq = 0
        self.max_dumps = max_dumps
        self._dump_seq = 0
        #: Paths of every dump written so far (latest last).
        self.dumps: list[Path] = []

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def total_events(self) -> int:
        """Events recorded over the recorder's lifetime."""
        return self._seq

    @property
    def dropped_events(self) -> int:
        """Events that aged out of the ring."""
        return self._seq - len(self._ring)

    # ------------------------------------------------------------------
    def record(
        self, kind: str, *, epoch: int | None = None, **fields
    ) -> RecorderEvent:
        """Append one event; ``fields`` must be JSON-able scalars."""
        event = RecorderEvent(
            seq=self._seq,
            time=time.time(),
            kind=kind,
            epoch=epoch,
            fields=fields,
        )
        self._seq += 1
        self._ring.append(event)
        return event

    def events(self, kind: str | None = None) -> list[RecorderEvent]:
        """Retained events oldest-first, optionally filtered by kind."""
        if kind is None:
            return list(self._ring)
        return [event for event in self._ring if event.kind == kind]

    def clear(self) -> None:
        self._ring.clear()

    # ------------------------------------------------------------------
    def to_json(self, reason: str = "manual") -> dict:
        """The dump document (see docs/observability.md for schema)."""
        return {
            "version": DUMP_VERSION,
            "reason": reason,
            "dumped_at": time.time(),
            "capacity": self.capacity,
            "total_events": self.total_events,
            "dropped_events": self.dropped_events,
            "events": [event.to_json() for event in self._ring],
        }

    # ------------------------------------------------------------------
    def record_epoch_events(
        self,
        epoch: int,
        reports=(),
        buffer_capacity: int | None = None,
        collection=None,
        outcomes=None,
        network=None,
        dp_missing=(),
    ) -> None:
        """Distil one epoch's notable happenings into ring events.

        Duck-typed over the pipeline's per-epoch objects (reports,
        ``CollectionResult``, ``HostOutcome`` list, ``NetworkResult``)
        so the recorder stays importable below every layer.  Quiet
        epochs record nothing — the ring holds only what an operator
        would want to see after an incident.
        """
        for report in reports:
            switch = report.switch
            if (
                buffer_capacity
                and switch.buffer_high_water >= 0.9 * buffer_capacity
            ):
                self.record(
                    "buffer_high_water",
                    epoch=epoch,
                    host=report.host_id,
                    high_water=switch.buffer_high_water,
                    capacity=buffer_capacity,
                )
            fastpath = report.fastpath
            if fastpath is not None:
                kickouts = getattr(fastpath, "kickout_count", 0)
                if kickouts:
                    self.record(
                        "fastpath_kickout",
                        epoch=epoch,
                        host=report.host_id,
                        kickouts=kickouts,
                        evictions=getattr(fastpath, "evict_count", 0),
                    )
        for host_id in dp_missing:
            self.record("dp_fault", epoch=epoch, host=host_id)
        if collection is not None:
            stats = collection.stats
            faults = {
                name: value
                for name, value in (
                    ("drops", stats.drops),
                    ("timeouts", stats.timeouts),
                    ("corrupt_frames", stats.corrupt_frames),
                    ("duplicates", stats.duplicates),
                    ("stale_frames", stats.stale_frames),
                    ("crashes", stats.crashes),
                    (
                        "conn_refused",
                        getattr(stats, "conn_refused", 0),
                    ),
                    (
                        "conn_resets",
                        getattr(stats, "conn_resets", 0),
                    ),
                    (
                        "partial_writes",
                        getattr(stats, "partial_writes", 0),
                    ),
                    ("slow_peers", getattr(stats, "slow_peers", 0)),
                    ("partitions", getattr(stats, "partitions", 0)),
                    (
                        "agg_crashes",
                        getattr(stats, "agg_crashes", 0),
                    ),
                    ("agg_hangs", getattr(stats, "agg_hangs", 0)),
                )
                if value
            }
            if faults:
                self.record("transport_fault", epoch=epoch, **faults)
            quarantined = getattr(stats, "quarantined_hosts", 0)
            if quarantined:
                self.record(
                    "transport_quarantine",
                    epoch=epoch,
                    hosts=quarantined,
                )
            if stats.retries:
                self.record(
                    "collector_retry",
                    epoch=epoch,
                    retries=stats.retries,
                    backoff_seconds=stats.backoff_seconds,
                )
            for host_id in collection.missing_hosts:
                self.record("missing_report", epoch=epoch, host=host_id)
            for failover in getattr(collection, "failovers", ()):
                self.record(
                    "aggregator_failover",
                    epoch=epoch,
                    aggregator=failover.aggregator_id,
                    fault=failover.kind,
                    shard_hosts=list(failover.shard_hosts),
                    redelivered=list(failover.redelivered_hosts),
                    unrecovered=list(failover.unrecovered_hosts),
                    detect_seconds=failover.detect_seconds,
                    recovery_seconds=failover.recovery_seconds,
                )
        for outcome in outcomes or ():
            if outcome.checkpoint_writes:
                self.record(
                    "checkpoint",
                    epoch=epoch,
                    host=outcome.host_id,
                    writes=outcome.checkpoint_writes,
                    bytes=outcome.checkpoint_bytes,
                )
            if outcome.restores:
                self.record(
                    "restore",
                    epoch=epoch,
                    host=outcome.host_id,
                    restores=outcome.restores,
                    restarts=outcome.restarts,
                    crashes=outcome.crashes,
                    hangs=outcome.hangs,
                    replayed_packets=outcome.replayed_packets,
                )
            if outcome.gave_up:
                self.record(
                    "gave_up", epoch=epoch, host=outcome.host_id
                )
            if outcome.quarantined:
                self.record(
                    "quarantine", epoch=epoch, host=outcome.host_id
                )
        degraded = getattr(network, "degraded", None)
        if degraded is not None:
            self.record(
                "degraded_epoch",
                epoch=epoch,
                reported=degraded.reported_hosts,
                expected=degraded.expected_hosts,
                missing=list(degraded.missing_hosts),
                scale=degraded.scale,
            )

    def _rotated_path(self, requested: Path, reason: str) -> Path:
        """Timestamp/sequence/reason-suffixed sibling of ``requested``.

        The name sorts chronologically (UTC timestamp first, then a
        monotonic per-process sequence for same-second dumps), so the
        rotation sweep can order artifacts lexicographically.
        """
        stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
        suffix = requested.suffix or ".json"
        name = (
            f"{requested.stem}-{stamp}-{self._dump_seq:04d}"
            f"-{reason}{suffix}"
        )
        self._dump_seq += 1
        return requested.with_name(name)

    def _sweep(self, requested: Path) -> None:
        """Unlink the oldest rotated siblings beyond ``max_dumps``."""
        suffix = requested.suffix or ".json"
        siblings = sorted(
            requested.parent.glob(f"{requested.stem}-*{suffix}")
        )
        keep = max(1, self.max_dumps)
        for stale in siblings[: max(0, len(siblings) - keep)]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - best-effort sweep
                pass

    def dump(self, path: str | Path, reason: str = "manual") -> Path:
        """Write the ring to a JSON artifact; returns the path written.

        With ``max_dumps`` unset the artifact lands at exactly
        ``path``, overwriting any prior incident (the newest wins —
        CI uploads the artifact immediately).  With ``max_dumps`` set
        the artifact gets a rotated timestamp/reason-suffixed name
        next to ``path`` and the oldest rotated siblings are swept so
        at most ``max_dumps`` remain.
        """
        requested = Path(path)
        if self.max_dumps is None:
            destination = requested
        else:
            destination = self._rotated_path(requested, reason)
        if destination.parent != Path(""):
            destination.parent.mkdir(parents=True, exist_ok=True)
        destination.write_text(
            json.dumps(self.to_json(reason), indent=2) + "\n"
        )
        if self.max_dumps is not None:
            self._sweep(requested)
        self.dumps.append(destination)
        return destination
