"""First-class telemetry for the SketchVisor pipeline.

Three pieces, all optional and all off by default:

* :class:`~repro.telemetry.registry.MetricsRegistry` — counters,
  gauges, and fixed-bucket histograms with per-host label support,
  published into by the software switch, fast path, controller, and
  monitor loop (the catalogue lives in
  :mod:`repro.telemetry.publish` and ``docs/observability.md``);
* :class:`~repro.telemetry.tracer.Tracer` — wall-time spans with
  nesting for every pipeline stage, renderable as a stage-timing tree
  or exported as ``chrome://tracing`` JSON;
* exporters (:mod:`repro.telemetry.exporters`) — Prometheus text
  exposition and JSON snapshots;
* :class:`~repro.telemetry.recorder.FlightRecorder` — a bounded ring
  of structured events dumped to a JSON artifact on crash, quarantine,
  or accuracy-SLO breach;
* accuracy observability (:mod:`repro.telemetry.accuracy`) —
  theoretical error envelopes from live sketch state, an empirical
  shadow ground-truth sampler, and the declarative SLO engine.

Usage::

    from repro import PipelineConfig, Telemetry

    telemetry = Telemetry()
    config = PipelineConfig(telemetry=telemetry)
    ...  # run epochs
    print(telemetry.prometheus_text())

``telemetry=None`` (the default) keeps every hot path untouched; the
environment variable ``REPRO_TELEMETRY=1`` turns telemetry on for any
pipeline constructed without an explicit instance (used by CI to run
the tier-1 suite fully instrumented).
"""

from __future__ import annotations

import os
from contextlib import nullcontext

from repro.telemetry.exporters import (
    json_snapshot,
    prometheus_text,
    write_chrome_trace,
    write_json_snapshot,
    write_prometheus,
)
from repro.telemetry.registry import (
    Counter,
    CounterFamily,
    Gauge,
    GaugeFamily,
    Histogram,
    HistogramFamily,
    MetricsRegistry,
)
from repro.telemetry.profiling import (
    ProfileConfig,
    Profiler,
    profile_from_env,
)
from repro.telemetry.recorder import FlightRecorder, RecorderEvent
from repro.telemetry.tracer import Span, Tracer

__all__ = [
    "Counter",
    "CounterFamily",
    "FlightRecorder",
    "Gauge",
    "GaugeFamily",
    "Histogram",
    "HistogramFamily",
    "MetricsRegistry",
    "ProfileConfig",
    "Profiler",
    "RecorderEvent",
    "Span",
    "Telemetry",
    "Tracer",
    "json_snapshot",
    "profile_from_env",
    "prometheus_text",
    "telemetry_from_env",
    "trace_span",
    "write_chrome_trace",
    "write_json_snapshot",
    "write_prometheus",
]


class Telemetry:
    """One metrics registry plus one tracer — the unit of wiring.

    Pass an instance as ``PipelineConfig(telemetry=...)`` (or directly
    to a :class:`~repro.dataplane.switch.SoftwareSwitch`); every
    instrumented component it reaches publishes into the same registry
    and tracer.
    """

    def __init__(
        self, profile: ProfileConfig | bool | None = None
    ) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer()
        self.recorder = FlightRecorder()
        #: Cycle-level profiler; ``None`` keeps every trace_span site a
        #: plain tracer span with zero extra cost.
        self.profiler: Profiler | None = None
        if profile:
            self.enable_profiling(
                profile if isinstance(profile, ProfileConfig) else None
            )

    def enable_profiling(
        self, config: ProfileConfig | None = None
    ) -> Profiler:
        """Attach a :class:`Profiler`: every span site becomes a
        wall+CPU stage timer and the stack sampler arms itself for the
        next stage window."""
        if self.profiler is None:
            self.profiler = Profiler(self, config)
        return self.profiler

    def span(self, name: str, **attrs):
        """Context manager timing one pipeline stage."""
        if self.profiler is not None:
            return self.profiler.stage(name, **attrs)
        return self.tracer.span(name, **attrs)

    # -- export conveniences -------------------------------------------
    def prometheus_text(self) -> str:
        return prometheus_text(self.registry)

    def json_snapshot(self) -> dict:
        return json_snapshot(self.registry, self.tracer)

    def chrome_trace(self) -> dict:
        return self.tracer.chrome_trace()

    def reset(self) -> None:
        self.registry.reset()
        self.tracer.reset()
        self.recorder.clear()
        if self.profiler is not None:
            self.profiler.close()
            self.profiler = Profiler(self, self.profiler.config)


def trace_span(telemetry: Telemetry | None, name: str, **attrs):
    """``telemetry.span(...)`` that degrades to a no-op for ``None``.

    The instrumented modules all call this, so running without
    telemetry costs one ``is None`` check per *stage* (never per
    packet).  With a profiler attached the same call sites become
    wall+CPU stage timers — existing instrumentation upgrades with no
    call-site changes.
    """
    if telemetry is None:
        return nullcontext()
    if telemetry.profiler is not None:
        return telemetry.profiler.stage(name, **attrs)
    return telemetry.tracer.span(name, **attrs)


def telemetry_from_env() -> Telemetry | None:
    """A fresh :class:`Telemetry` when ``REPRO_TELEMETRY`` is set.

    Recognizes any non-empty value except ``0``; returns ``None``
    otherwise, keeping telemetry strictly opt-in.  ``REPRO_PROFILE=1``
    implies telemetry and attaches a profiler built from the
    ``REPRO_PROFILE_*`` knobs.
    """
    profile = profile_from_env()
    flag = os.environ.get("REPRO_TELEMETRY", "")
    if (flag and flag != "0") or profile is not None:
        return Telemetry(profile=profile)
    return None
