"""The metric catalogue: how pipeline objects map into the registry.

Every component publishes through these helpers so the counter
*semantics* are engine-independent: the scalar switch, the batched
switch, and the process-pool pipeline all publish the same families
from the same per-epoch report fields, which is what makes
batch-vs-scalar counter totals comparable (and testable) bit for bit.

All helpers are duck-typed over the report/snapshot objects (no
dataplane imports) so this module sits below every instrumented layer.
Counter values are per-epoch increments; gauges are end-of-epoch
absolutes.  See ``docs/observability.md`` for the full catalogue.
"""

from __future__ import annotations

from repro.telemetry.registry import MetricsRegistry

#: Bucket bounds for LENS iteration counts (max_iterations default 60).
LENS_ITERATION_BUCKETS = (1, 2, 5, 10, 20, 40, 60, 100, 200)

#: Bucket bounds for epoch wall times in seconds.
EPOCH_SECONDS_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0, 30.0, 60.0,
)


def publish_switch_epoch(
    registry: MetricsRegistry,
    report,
    *,
    host: str = "0",
    sketch: str = "sketch",
    engine: str = "scalar",
) -> None:
    """Publish one epoch's :class:`SwitchReport` into the registry."""
    packets = registry.counter(
        "sketchvisor_switch_packets_total",
        "Packets routed per path by the software switch",
    )
    packets.inc(report.normal_packets, host=host, path="normal")
    packets.inc(report.fastpath_packets, host=host, path="fastpath")

    volume = registry.counter(
        "sketchvisor_switch_bytes_total",
        "Bytes routed per path by the software switch",
    )
    volume.inc(report.normal_bytes, host=host, path="normal")
    volume.inc(report.fastpath_bytes, host=host, path="fastpath")

    cycles = registry.counter(
        "sketchvisor_switch_cycles_total",
        "Simulated CPU cycles per actor, labelled by normal-path sketch",
    )
    cycles.inc(
        report.producer_cycles, host=host, sketch=sketch, actor="producer"
    )
    cycles.inc(
        report.consumer_cycles, host=host, sketch=sketch, actor="consumer"
    )

    registry.gauge(
        "sketchvisor_switch_buffer_high_water",
        "Peak FIFO occupancy (packets) during the epoch",
    ).set_max(report.buffer_high_water, host=host)
    registry.gauge(
        "sketchvisor_switch_throughput_gbps",
        "Sustained throughput of the last epoch",
    ).set(report.throughput_gbps, host=host)
    registry.counter(
        "sketchvisor_switch_epochs_total",
        "Epochs processed, labelled by engine",
    ).inc(1, host=host, engine=engine)


def fastpath_stats(fastpath) -> dict[str, float]:
    """Uniform per-epoch operation stats for a live fast path *or* a
    snapshot (:class:`FastPathSnapshot` carries the same counters so
    publishing from control-plane reports matches publishing in situ).
    """
    if hasattr(fastpath, "num_updates"):  # live FastPath / MisraGries
        return {
            "updates": fastpath.num_updates,
            "hits": fastpath.num_hits,
            "inserts": fastpath.num_inserts,
            "kickouts": fastpath.num_kickouts,
            "evictions": fastpath.num_evicted,
            "rejected": getattr(fastpath, "num_rejected", 0),
            "bytes": fastpath.total_bytes,
            "decremented": fastpath.total_decremented,
            "tracked": len(fastpath.table),
        }
    return {  # FastPathSnapshot
        "updates": fastpath.update_count,
        "hits": fastpath.hit_count,
        "inserts": fastpath.insert_count,
        "kickouts": fastpath.kickout_count,
        "evictions": fastpath.evict_count,
        "rejected": fastpath.reject_count,
        "bytes": fastpath.total_bytes,
        "decremented": fastpath.total_decremented,
        "tracked": len(fastpath.entries),
    }


def publish_fastpath_epoch(
    registry: MetricsRegistry,
    stats: dict[str, float],
    *,
    host: str = "0",
) -> None:
    """Publish one epoch's fast-path stats (see :func:`fastpath_stats`)."""
    updates = registry.counter(
        "sketchvisor_fastpath_updates_total",
        "Fast-path updates by outcome (Algorithm 1 work kinds)",
    )
    updates.inc(stats["hits"], host=host, kind="hit")
    updates.inc(stats["inserts"], host=host, kind="insert")
    updates.inc(stats["kickouts"], host=host, kind="kickout")
    registry.counter(
        "sketchvisor_fastpath_evictions_total",
        "Flows evicted by kick-out passes",
    ).inc(stats["evictions"], host=host)
    registry.counter(
        "sketchvisor_fastpath_rejected_total",
        "Kick-out passes that admitted no new flow",
    ).inc(stats["rejected"], host=host)
    registry.counter(
        "sketchvisor_fastpath_bytes_total",
        "Total bytes seen by the fast path (V growth)",
    ).inc(stats["bytes"], host=host)
    registry.counter(
        "sketchvisor_fastpath_decremented_bytes_total",
        "Sum of kick-out decrements (E growth)",
    ).inc(stats["decremented"], host=host)
    registry.gauge(
        "sketchvisor_fastpath_tracked_flows",
        "Flows tracked in the hash table at epoch end",
    ).set(stats["tracked"], host=host)


def publish_collection_epoch(
    registry: MetricsRegistry, collection
) -> None:
    """Publish one epoch's report-delivery outcome (CollectionResult).

    Every counter is a per-epoch increment from the collector's
    :class:`~repro.controlplane.transport.CollectionStats`, so the
    totals read as "what the report channel survived so far".
    """
    stats = collection.stats
    events = registry.counter(
        "sketchvisor_transport_faults_total",
        "Report-delivery faults survived by the collector, by kind",
    )
    events.inc(stats.drops, kind="drop")
    events.inc(stats.timeouts, kind="timeout")
    events.inc(stats.corrupt_frames, kind="corrupt_frame")
    events.inc(stats.duplicates, kind="duplicate")
    events.inc(stats.stale_frames, kind="stale_frame")
    events.inc(stats.crashes, kind="host_crash")
    # Connection-level kinds exist only on the socket transport; the
    # getattr default keeps older CollectionStats shapes publishable.
    events.inc(getattr(stats, "conn_refused", 0), kind="conn_refused")
    events.inc(getattr(stats, "conn_resets", 0), kind="conn_reset")
    events.inc(
        getattr(stats, "partial_writes", 0), kind="partial_write"
    )
    events.inc(getattr(stats, "slow_peers", 0), kind="slow_peer")
    events.inc(getattr(stats, "partitions", 0), kind="partition")
    events.inc(getattr(stats, "agg_crashes", 0), kind="agg_crash")
    events.inc(getattr(stats, "agg_hangs", 0), kind="agg_hang")
    registry.counter(
        "sketchvisor_transport_retries_total",
        "Report delivery retries (attempts beyond each host's first)",
    ).inc(stats.retries)
    registry.counter(
        "sketchvisor_transport_backoff_seconds_total",
        "Simulated exponential-backoff delay accumulated by retries",
    ).inc(stats.backoff_seconds)
    registry.counter(
        "sketchvisor_transport_missing_reports_total",
        "Host reports still missing when collection gave up",
    ).inc(len(collection.missing_hosts))
    registry.counter(
        "sketchvisor_transport_v1_frames_total",
        "Deprecated v1 (un-CRC'd) report frames decoded",
    ).inc(getattr(stats, "v1_frames", 0))


def publish_cluster_epoch(
    registry: MetricsRegistry, collector, collection
) -> None:
    """Publish one socket-transport epoch's cluster-only shape.

    ``collector`` is the :class:`~repro.cluster.ClusterCollector`
    (aggregator-tier geometry), ``collection`` its result; the fault
    counters themselves go through :func:`publish_collection_epoch`
    like every other transport.
    """
    stats = collection.stats
    registry.counter(
        "sketchvisor_cluster_backpressure_waits_total",
        "Sends that waited on the bounded in-flight pool or a full "
        "socket write buffer",
    ).inc(getattr(stats, "backpressure_waits", 0))
    registry.counter(
        "sketchvisor_cluster_quarantined_host_epochs_total",
        "Host-epochs skipped by the transport circuit breaker",
    ).inc(getattr(stats, "quarantined_hosts", 0))
    registry.gauge(
        "sketchvisor_cluster_aggregators",
        "Aggregator-tier size used by the latest cluster epoch",
    ).set(collector.last_aggregators)
    registry.gauge(
        "sketchvisor_cluster_peak_resident_reports",
        "Peak sketch-carrying objects resident in one aggregator "
        "(hierarchical) or the controller (flat) in the latest epoch",
    ).set(collector.last_peak_resident)
    failovers = registry.counter(
        "sketchvisor_aggregator_failovers_total",
        "Aggregators declared dead by the heartbeat watchdog and "
        "re-sharded onto survivors, by failure kind",
    )
    for record in getattr(collection, "failovers", ()):
        failovers.inc(1, kind=record.kind)
    registry.counter(
        "sketchvisor_aggregator_redeliveries_total",
        "Host reports re-shipped to a surviving aggregator after "
        "their shard died",
    ).inc(getattr(stats, "redeliveries", 0))
    registry.counter(
        "sketchvisor_aggregator_redelivery_dups_total",
        "Redeliveries collapsed by (host, epoch) dedup because the "
        "report had already landed elsewhere",
    ).inc(getattr(stats, "redelivery_dups", 0))
    registry.counter(
        "sketchvisor_aggregator_unrecovered_host_epochs_total",
        "Shard hosts still missing after fail-over settled (degraded-"
        "merge input)",
    ).inc(
        sum(
            len(record.unrecovered_hosts)
            for record in getattr(collection, "failovers", ())
        )
    )


def publish_worker_crashes(
    registry: MetricsRegistry, count: int
) -> None:
    """Count data-plane worker crashes recovered by serial fallback."""
    registry.counter(
        "sketchvisor_pipeline_worker_crashes_total",
        "Process-pool workers that died mid-epoch (shards rerun "
        "serially)",
    ).inc(count)


def publish_durability_epoch(
    registry: MetricsRegistry, outcomes
) -> None:
    """Publish one supervised epoch's durability outcome per host.

    ``outcomes`` is the supervisor's list of
    :class:`~repro.durability.supervisor.HostOutcome` records; every
    counter is a per-epoch increment, so totals read as "what the
    checkpoint/restart machinery did so far".
    """
    writes = registry.counter(
        "sketchvisor_checkpoint_writes_total",
        "Engine snapshots written by the checkpointer",
    )
    volume = registry.counter(
        "sketchvisor_checkpoint_bytes_total",
        "Snapshot bytes written by the checkpointer",
    )
    restores = registry.counter(
        "sketchvisor_checkpoint_restores_total",
        "Engine restores from a checkpoint after a fault",
    )
    corrupt = registry.counter(
        "sketchvisor_checkpoint_corrupt_snapshots_total",
        "Snapshots skipped during restore (CRC/decode failure)",
    )
    replayed = registry.counter(
        "sketchvisor_replay_packets_total",
        "Packets replayed from the journaled tail after restores",
    )
    host_faults = registry.counter(
        "sketchvisor_host_faults_total",
        "Mid-epoch data-plane faults survived, by kind",
    )
    restarts = registry.counter(
        "sketchvisor_host_restarts_total",
        "Host restart-with-replay attempts",
    )
    gave_up = registry.counter(
        "sketchvisor_host_gave_up_epochs_total",
        "Host epochs forfeited after exhausting restarts",
    )
    quarantines = registry.counter(
        "sketchvisor_host_quarantined_epochs_total",
        "Host epochs sat out under circuit-breaker quarantine",
    )
    watchdog = registry.counter(
        "sketchvisor_watchdog_wait_seconds_total",
        "Simulated seconds the watchdog waited out hung hosts",
    )
    latency = registry.histogram(
        "sketchvisor_recovery_seconds",
        "Wall time of one restore-and-reposition recovery",
        buckets=EPOCH_SECONDS_BUCKETS,
    )
    for outcome in outcomes:
        host = str(outcome.host_id)
        writes.inc(outcome.checkpoint_writes, host=host)
        volume.inc(outcome.checkpoint_bytes, host=host)
        restores.inc(outcome.restores, host=host)
        corrupt.inc(outcome.corrupt_snapshots, host=host)
        replayed.inc(outcome.replayed_packets, host=host)
        host_faults.inc(outcome.crashes, host=host, kind="crash")
        host_faults.inc(outcome.hangs, host=host, kind="hang")
        restarts.inc(outcome.restarts, host=host)
        gave_up.inc(1 if outcome.gave_up else 0, host=host)
        quarantines.inc(1 if outcome.quarantined else 0, host=host)
        watchdog.inc(outcome.watchdog_wait, host=host)
        if outcome.restores:
            latency.observe(
                outcome.recovery_seconds / outcome.restores
            )


def publish_controller_epoch(registry: MetricsRegistry, network) -> None:
    """Publish one epoch's merge + recovery outcome (NetworkResult)."""
    registry.counter(
        "sketchvisor_controller_reports_total",
        "Per-host reports merged by the controller",
    ).inc(network.num_hosts)
    degraded = network.degraded
    registry.counter(
        "sketchvisor_controller_epochs_total",
        "Controller epochs by merge quality",
    ).inc(1, quality="degraded" if degraded is not None else "full")
    if degraded is not None:
        registry.counter(
            "sketchvisor_degraded_missing_hosts_total",
            "Host reports absent from degraded-mode merges",
        ).inc(degraded.expected_hosts - degraded.reported_hosts)
        registry.gauge(
            "sketchvisor_degraded_error_inflation",
            "Estimated relative-error inflation of the last degraded "
            "epoch (f / (1 - f) for missing share f)",
        ).set(degraded.error_inflation)
    if network.snapshot is not None:
        registry.gauge(
            "sketchvisor_controller_merged_table_flows",
            "Flows in the merged fast-path table H",
        ).set(len(network.snapshot.entries))
    registry.histogram(
        "sketchvisor_lens_iterations",
        "LENS solver iterations to convergence",
        buckets=LENS_ITERATION_BUCKETS,
    ).observe(network.lens_iterations)
    registry.counter(
        "sketchvisor_lens_solves_total",
        "LENS solves by convergence outcome",
    ).inc(1, converged=str(bool(network.lens_converged)).lower())


def publish_recovery_residual(
    registry: MetricsRegistry, residual: float
) -> None:
    registry.gauge(
        "sketchvisor_recovery_residual",
        "Final LENS constraint residual of the last recovery",
    ).set(residual)


def publish_profile_epoch(
    registry: MetricsRegistry,
    stage_deltas: dict[str, tuple[float, float]],
    rss: dict[str, int],
) -> None:
    """Publish one profiled epoch's stage timings and memory marks.

    ``stage_deltas`` maps stage name to ``(wall_seconds,
    cpu_seconds)`` for the window just closed (the profiler computes
    per-epoch deltas from its cumulative totals); ``rss`` maps
    contributing pid to its resident-set high-water in bytes.
    """
    wall = registry.histogram(
        "sketchvisor_stage_wall_seconds",
        "Wall time attributed to one pipeline stage per epoch",
        buckets=EPOCH_SECONDS_BUCKETS,
    )
    cpu = registry.histogram(
        "sketchvisor_stage_cpu_seconds",
        "CPU time attributed to one pipeline stage per epoch",
        buckets=EPOCH_SECONDS_BUCKETS,
    )
    for stage, (wall_s, cpu_s) in stage_deltas.items():
        wall.observe(wall_s, stage=stage)
        cpu.observe(cpu_s, stage=stage)
    gauge = registry.gauge(
        "sketchvisor_process_rss_bytes",
        "Resident-set high-water of each contributing process",
    )
    for pid, high_water in rss.items():
        gauge.set_max(high_water, pid=pid)


def publish_monitor_epoch(
    registry: MetricsRegistry, summary, seconds: float
) -> None:
    """Publish one monitoring-loop epoch (EpochSummary + wall time)."""
    alerts = registry.counter(
        "sketchvisor_monitor_alerts_total",
        "Alerts raised by the monitoring loop, by kind",
    )
    for alert in summary.alerts:
        alerts.inc(1, kind=alert.kind.value)
    registry.histogram(
        "sketchvisor_monitor_epoch_seconds",
        "Wall time of one monitoring-loop epoch",
        buckets=EPOCH_SECONDS_BUCKETS,
    ).observe(seconds)
    registry.counter(
        "sketchvisor_monitor_epochs_total",
        "Epochs processed by the monitoring loop",
    ).inc(1)


def publish_serve_window(
    registry: MetricsRegistry, record, seconds: float
) -> None:
    """Publish one recovered serve-mode window (WindowRecord)."""
    registry.counter(
        "sketchvisor_serve_windows_total",
        "Windows recovered by the streaming service",
    ).inc(1)
    registry.counter(
        "sketchvisor_serve_packets_total",
        "Packets ingested into recovered windows",
    ).inc(record.packets)
    registry.counter(
        "sketchvisor_serve_bytes_total",
        "Bytes ingested into recovered windows",
    ).inc(record.bytes)
    registry.gauge(
        "sketchvisor_serve_window_id",
        "Id of the latest recovered window",
    ).set(record.window_id)
    registry.gauge(
        "sketchvisor_serve_last_window_unix_seconds",
        "Wall-clock close time of the latest recovered window",
    ).set(record.closed_at)
    registry.histogram(
        "sketchvisor_serve_window_seconds",
        "Pipeline wall time to recover one window",
        buckets=EPOCH_SECONDS_BUCKETS,
    ).observe(seconds)
    if record.degraded:
        registry.counter(
            "sketchvisor_serve_degraded_windows_total",
            "Windows merged in degraded mode by the service",
        ).inc(1)


def publish_serve_quorum_failure(registry: MetricsRegistry) -> None:
    """Count a serve-mode window whose merge failed quorum."""
    registry.counter(
        "sketchvisor_serve_quorum_failures_total",
        "Windows the service could not merge for lack of quorum",
    ).inc(1)


def publish_http_request(
    registry: MetricsRegistry, path: str, code: int
) -> None:
    """Count one observability-plane HTTP request."""
    registry.counter(
        "sketchvisor_serve_http_requests_total",
        "Observability-plane HTTP requests, by path and status",
    ).inc(1, path=path, code=code)
