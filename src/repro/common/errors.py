"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """Raised when a sketch, task, or pipeline is misconfigured."""


class DecodeError(ReproError):
    """Raised when a reversible sketch cannot decode its contents.

    FlowRadar, for example, can only single-decode when the number of
    distinct flows stays below its design capacity; exceeding it leaves
    undecodable cells.
    """


class MergeError(ReproError):
    """Raised when two incompatible structures are merged.

    Sketches can only be merged (matrix-added) when they share shape,
    hash seeds, and type; hash tables only when they track the same key
    kind.
    """
