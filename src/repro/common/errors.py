"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """Raised when a sketch, task, or pipeline is misconfigured."""


class DecodeError(ReproError):
    """Raised when a reversible sketch cannot decode its contents.

    FlowRadar, for example, can only single-decode when the number of
    distinct flows stays below its design capacity; exceeding it leaves
    undecodable cells.
    """


class MergeError(ReproError):
    """Raised when two incompatible structures are merged.

    Sketches can only be merged (matrix-added) when they share shape,
    hash seeds, and type; hash tables only when they track the same key
    kind.
    """


class TransportError(ConfigError):
    """Base class for host → controller wire failures.

    Subclasses :class:`ConfigError` so existing callers that treat any
    malformed frame as a configuration problem keep working, while the
    report collector can distinguish *retriable* delivery failures
    (corruption, staleness, timeouts) from hard misconfiguration.
    """


class CorruptFrameError(TransportError):
    """A frame failed validation: bad magic/version, a length field
    that disagrees with the actual buffer, a CRC32 mismatch, or a
    payload the restricted unpickler cannot parse."""


class StaleEpochError(TransportError):
    """A frame carried an epoch number other than the one being
    collected — a delayed or replayed report from an earlier epoch."""


class ReportTimeout(TransportError):
    """A host's report did not arrive within the collection deadline
    (simulated delivery latency exceeded the per-host timeout)."""


class QuorumError(MergeError):
    """Fewer hosts reported than the configured quorum; the epoch
    cannot be recovered even in degraded mode."""


class SnapshotError(ReproError):
    """Base class for durability (checkpoint/restore) failures."""


class CorruptSnapshotError(SnapshotError):
    """A checkpoint file failed validation: bad magic/version, a length
    field that disagrees with the buffer, a CRC32 mismatch, or a
    payload the restricted unpickler cannot parse.  The restore path
    treats this as "walk back to the previous checkpoint", never as a
    fatal error."""
