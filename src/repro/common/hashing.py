"""Deterministic, seedable hash families.

Sketches need several *independent* hash functions over flow keys.  The
paper's prototype uses the Snort hash; here we use a splitmix64-style
finalizer over (key ^ seed), which passes avalanche tests and — more
importantly for the reproduction — is deterministic across the data plane
and the control plane, so the recovery step can recompute exactly which
counters a flow touched.

All functions operate on Python integers (flow keys fold into 64-bit
integers via :func:`fold_key`) and return non-negative integers.
"""

from __future__ import annotations

from collections.abc import Iterable

_MASK64 = (1 << 64) - 1

# splitmix64 finalizer constants (Steele, Lea & Flood 2014).
_C1 = 0xBF58476D1CE4E5B9
_C2 = 0x94D049BB133111EB
_GOLDEN = 0x9E3779B97F4A7C15


def mix64(value: int) -> int:
    """Finalize a 64-bit integer into a well-mixed 64-bit hash.

    This is the splitmix64 output function: xor-shift / multiply rounds
    with full avalanche (every input bit affects every output bit with
    probability ~0.5).
    """
    value &= _MASK64
    value ^= value >> 30
    value = (value * _C1) & _MASK64
    value ^= value >> 27
    value = (value * _C2) & _MASK64
    value ^= value >> 31
    return value


def mix64_array(values: "np.ndarray", seed: int = 0) -> "np.ndarray":
    """Vectorized :func:`mix64` over a uint64 array (xor'd with ``seed``).

    Used to build reverse-hashing preimage tables (Reversible Sketch)
    where the whole word space is hashed at once.
    """
    import numpy as np

    with np.errstate(over="ignore"):
        v = values.astype(np.uint64) ^ np.uint64(seed & _MASK64)
        v ^= v >> np.uint64(30)
        v *= np.uint64(_C1)
        v ^= v >> np.uint64(27)
        v *= np.uint64(_C2)
        v ^= v >> np.uint64(31)
    return v


def trailing_zeros_array(values: "np.ndarray") -> "np.ndarray":
    """Vectorized count of trailing zero bits per uint64 (64 for zero).

    Mirrors the scalar ``(v & -v).bit_length() - 1`` trick: isolate the
    lowest set bit and take its exact power-of-two log.
    """
    import numpy as np

    v = np.ascontiguousarray(values, dtype=np.uint64)
    lowest = v & (~v + np.uint64(1))
    out = np.full(v.shape, 64, dtype=np.int64)
    nonzero = v != 0
    # Powers of two up to 2**63 are exact in float64, so log2 is exact.
    out[nonzero] = np.log2(lowest[nonzero].astype(np.float64)).astype(
        np.int64
    )
    return out


def fold_key(key: object) -> int:
    """Fold an arbitrary hashable key into a 64-bit integer.

    Integers fold via one mixing round so that sequential IDs (common in
    synthetic traces) do not land in sequential buckets.  Byte strings
    fold 8 bytes at a time.  Tuples fold element-wise.  Anything else
    falls back to Python's ``hash`` (stable within a process, which is
    all the simulation requires — flow keys are ints or tuples of ints).
    """
    if isinstance(key, int):
        return mix64(key)
    if isinstance(key, bytes):
        acc = len(key)
        for offset in range(0, len(key), 8):
            chunk = int.from_bytes(key[offset : offset + 8], "little")
            acc = mix64(acc ^ chunk)
        return acc
    if isinstance(key, tuple):
        acc = len(key)
        for element in key:
            acc = mix64(acc ^ fold_key(element))
        return acc
    return mix64(hash(key) & _MASK64)


class HashFamily:
    """A family of ``depth`` independent hash functions over 64-bit keys.

    Each member ``i`` is ``h_i(key) = mix64(key ^ seed_i)`` with distinct
    per-row seeds derived from the family seed by the golden-ratio
    sequence.  The family also provides ±1 *sign* hashes (for
    CountSketch-style unbiased estimators) derived from a disjoint seed
    stream, so bucket choice and sign are independent.

    Parameters
    ----------
    depth:
        Number of independent hash functions.
    seed:
        Family seed.  Two families with the same ``(depth, seed)`` are
        identical — this is what lets the control plane replay data-plane
        hashing.
    """

    def __init__(self, depth: int, seed: int = 1):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.depth = depth
        self.seed = seed
        base = mix64(seed ^ _GOLDEN)
        self._row_seeds = [
            mix64(base + (i + 1) * _GOLDEN) for i in range(depth)
        ]
        self._sign_seeds = [
            mix64(base ^ ((i + 1) * _C1)) for i in range(depth)
        ]

    def hash_value(self, row: int, key64: int) -> int:
        """Raw 64-bit hash of ``key64`` under row ``row``."""
        return mix64(key64 ^ self._row_seeds[row])

    def bucket(self, row: int, key64: int, width: int) -> int:
        """Bucket index in ``[0, width)`` for ``key64`` under row ``row``."""
        return self.hash_value(row, key64) % width

    def buckets(self, key64: int, width: int) -> list[int]:
        """Bucket indices for all rows at once."""
        return [
            mix64(key64 ^ row_seed) % width for row_seed in self._row_seeds
        ]

    def sign(self, row: int, key64: int) -> int:
        """A ±1 sign hash, independent of the bucket hash of the same row."""
        return 1 if mix64(key64 ^ self._sign_seeds[row]) & 1 else -1

    def signs(self, key64: int) -> list[int]:
        """Sign hashes for all rows at once."""
        return [
            1 if mix64(key64 ^ sign_seed) & 1 else -1
            for sign_seed in self._sign_seeds
        ]

    # ------------------------------------------------------------------
    # Vectorized (NumPy) variants — exact array counterparts of the
    # scalar methods above: ``buckets_array(keys, w)[i, j]`` equals
    # ``bucket(i, int(keys[j]), w)`` for every row and key.  They are
    # what lets the batched data plane hash a whole epoch at once.
    # ------------------------------------------------------------------
    @staticmethod
    def _as_keys(keys64) -> "np.ndarray":
        import numpy as np

        return np.ascontiguousarray(keys64, dtype=np.uint64)

    def hash_values_array(self, keys64) -> "np.ndarray":
        """``(depth, n)`` raw 64-bit hashes of ``keys64`` (uint64)."""
        import numpy as np

        keys = self._as_keys(keys64)
        out = np.empty((self.depth, keys.shape[0]), dtype=np.uint64)
        for row, row_seed in enumerate(self._row_seeds):
            out[row] = mix64_array(keys, seed=row_seed)
        return out

    def buckets_array(self, keys64, width: int) -> "np.ndarray":
        """``(depth, n)`` bucket indices in ``[0, width)`` (int64)."""
        import numpy as np

        keys = self._as_keys(keys64)
        out = np.empty((self.depth, keys.shape[0]), dtype=np.int64)
        for row, row_seed in enumerate(self._row_seeds):
            out[row] = (
                mix64_array(keys, seed=row_seed) % np.uint64(width)
            ).astype(np.int64)
        return out

    def signs_array(self, keys64) -> "np.ndarray":
        """``(depth, n)`` ±1 sign hashes (int64)."""
        import numpy as np

        keys = self._as_keys(keys64)
        out = np.empty((self.depth, keys.shape[0]), dtype=np.int64)
        one = np.uint64(1)
        for row, sign_seed in enumerate(self._sign_seeds):
            out[row] = np.where(
                mix64_array(keys, seed=sign_seed) & one, 1, -1
            )
        return out

    def uniform01(self, row: int, key64: int) -> float:
        """Map the row hash to a uniform float in ``[0, 1)``.

        Used by cardinality estimators (kMin, FM) that need a uniform
        draw per key rather than a bucket index.
        """
        return self.hash_value(row, key64) / 2.0**64

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashFamily):
            return NotImplemented
        return self.depth == other.depth and self.seed == other.seed

    def __hash__(self) -> int:  # pragma: no cover - trivial
        return hash((self.depth, self.seed))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashFamily(depth={self.depth}, seed={self.seed})"


def iter_key64(keys: Iterable[object]) -> Iterable[int]:
    """Fold an iterable of keys to 64-bit integers (generator)."""
    return (fold_key(key) for key in keys)
