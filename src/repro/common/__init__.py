"""Shared substrate: flow keys, hash families, configuration, errors.

Everything in :mod:`repro` builds on these primitives.  The hash family is
seedable and deterministic so that the data plane (which records packets
into sketches) and the control plane (which reconstructs sketch positions
for compressive-sensing recovery) agree on where every flow lands.
"""

from repro.common.errors import (
    ConfigError,
    DecodeError,
    MergeError,
    ReproError,
)
from repro.common.flow import (
    FlowKey,
    Packet,
    destination_key,
    flow_pair_key,
    source_key,
)
from repro.common.hashing import HashFamily, fold_key, mix64

__all__ = [
    "ConfigError",
    "DecodeError",
    "FlowKey",
    "HashFamily",
    "MergeError",
    "Packet",
    "ReproError",
    "destination_key",
    "flow_pair_key",
    "fold_key",
    "mix64",
    "source_key",
]
