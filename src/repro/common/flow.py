"""Flow and packet abstractions.

The paper identifies flow-based statistics by 5-tuples and host-based
statistics by IP addresses (§2.1).  :class:`FlowKey` is an immutable
5-tuple; helper functions project it to the key kinds the different
measurement tasks use (source host, destination host, src→dst pair).

Keys carry a cached 64-bit fold (``key64``) so hot loops hash a plain
integer instead of re-folding the tuple per sketch row.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.hashing import fold_key, mix64

PROTO_TCP = 6
PROTO_UDP = 17


@dataclass(frozen=True, slots=True)
class FlowKey:
    """An immutable 5-tuple flow identifier.

    Addresses are stored as 32-bit integers and ports as 16-bit integers,
    matching the 104-bit flow-header space the paper reasons about
    (2 x 32 + 2 x 16 + 8 = 104 bits).
    """

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    proto: int = PROTO_TCP
    # Cached 64-bit fold, excluded from equality/hash/repr; computed
    # once in __post_init__ so hot loops never re-fold the header.
    _key64: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        if not 0 <= self.src_ip < 2**32 or not 0 <= self.dst_ip < 2**32:
            raise ValueError("IP addresses must fit in 32 bits")
        if not 0 <= self.src_port < 2**16 or not 0 <= self.dst_port < 2**16:
            raise ValueError("ports must fit in 16 bits")
        if not 0 <= self.proto < 2**8:
            raise ValueError("protocol must fit in 8 bits")
        packed = self.key104
        object.__setattr__(
            self,
            "_key64",
            mix64((packed >> 64) ^ (packed & ((1 << 64) - 1))),
        )

    @property
    def key104(self) -> int:
        """The exact 104-bit packed header, used by reversible sketches."""
        return (
            (self.src_ip << 72)
            | (self.dst_ip << 40)
            | (self.src_port << 24)
            | (self.dst_port << 8)
            | self.proto
        )

    @property
    def key64(self) -> int:
        """A mixed 64-bit fold of the header, used by hashing sketches.

        Precomputed in ``__post_init__`` — reading it is a slot load,
        not a re-fold of the 104-bit header.
        """
        return self._key64

    @classmethod
    def from_key104(cls, packed: int) -> "FlowKey":
        """Inverse of :attr:`key104` — unpack a 104-bit header."""
        return cls(
            src_ip=(packed >> 72) & 0xFFFFFFFF,
            dst_ip=(packed >> 40) & 0xFFFFFFFF,
            src_port=(packed >> 24) & 0xFFFF,
            dst_port=(packed >> 8) & 0xFFFF,
            proto=packed & 0xFF,
        )

    def reversed(self) -> "FlowKey":
        """The flow of the opposite direction (dst↔src swapped)."""
        return FlowKey(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            src_port=self.dst_port,
            dst_port=self.src_port,
            proto=self.proto,
        )


def source_key(flow: FlowKey) -> int:
    """Host key for superspreader detection: the source IP."""
    return flow.src_ip


def destination_key(flow: FlowKey) -> int:
    """Host key for DDoS detection: the destination IP."""
    return flow.dst_ip


def flow_pair_key(flow: FlowKey) -> int:
    """(src, dst) host-pair key, folded to 64 bits."""
    return fold_key((flow.src_ip, flow.dst_ip))


@dataclass(frozen=True, slots=True)
class Packet:
    """A single observed packet: flow identity, byte size, timestamp.

    ``timestamp`` is in seconds from the start of the trace; the data
    plane uses it to derive arrival spacing when simulating offered load.
    """

    flow: FlowKey
    size: int
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")
