"""Plain-text reporting helpers: bar charts and comparison tables.

Terminal-friendly rendering for example scripts, the CLI, and the
experiment result files — no plotting dependency required.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

_BAR = "█"
_HALF = "▌"


def ascii_bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    unit: str = "",
    max_value: float | None = None,
) -> str:
    """Render a horizontal bar chart.

    >>> print(ascii_bar_chart({"a": 2.0, "b": 1.0}, width=4))
    a  ████  2
    b  ██    1
    """
    if not values:
        return "(no data)"
    peak = max_value if max_value is not None else max(values.values())
    peak = max(peak, 1e-12)
    label_width = max(len(str(label)) for label in values)
    lines = []
    for label, value in values.items():
        filled = value / peak * width
        bar = _BAR * int(filled)
        if filled - int(filled) >= 0.5:
            bar += _HALF
        bar = bar.ljust(width)
        rendered = _format_number(value)
        lines.append(
            f"{str(label):<{label_width}}  {bar}  {rendered}{unit}"
        )
    return "\n".join(lines)


def comparison_table(
    rows: Mapping[str, Mapping[str, float]],
    columns: Sequence[str] | None = None,
    formats: Mapping[str, str] | None = None,
) -> str:
    """Render ``{row: {column: value}}`` as an aligned text table.

    ``formats`` maps column names to format specs (default ``.3g``);
    use e.g. ``{"recall": ".1%"}`` for percentages.
    """
    if not rows:
        return "(no data)"
    if columns is None:
        columns = list(next(iter(rows.values())))
    formats = formats or {}
    label_width = max(len(str(label)) for label in rows)
    col_width = {
        column: max(
            len(column),
            max(
                len(_apply_format(values.get(column), formats.get(column)))
                for values in rows.values()
            ),
        )
        for column in columns
    }
    header = " " * label_width + "  " + "  ".join(
        f"{column:>{col_width[column]}}" for column in columns
    )
    lines = [header, "-" * len(header)]
    for label, values in rows.items():
        cells = "  ".join(
            f"{_apply_format(values.get(column), formats.get(column)):>{col_width[column]}}"
            for column in columns
        )
        lines.append(f"{str(label):<{label_width}}  {cells}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line trend: ``sparkline([1, 5, 3])`` -> ``'▁█▄'``."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    low = min(values)
    high = max(values)
    span = max(high - low, 1e-12)
    return "".join(
        blocks[int((value - low) / span * (len(blocks) - 1))]
        for value in values
    )


def _format_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.3g}"


def _apply_format(value, spec: str | None) -> str:
    if value is None:
        return "-"
    if spec:
        return format(value, spec)
    return _format_number(float(value))
