"""Plain-text reporting helpers: bar charts and comparison tables.

Terminal-friendly rendering for example scripts, the CLI, and the
experiment result files — no plotting dependency required.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

_BAR = "█"
_HALF = "▌"


def ascii_bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    unit: str = "",
    max_value: float | None = None,
) -> str:
    """Render a horizontal bar chart.

    Values that cannot be drawn as a bar length are clamped and
    annotated rather than rendered as garbage: negatives get an empty
    bar marked ``(< 0)``, NaN / infinities an empty bar marked
    ``(non-finite)``.  Non-finite values are also excluded from the
    automatic peak, so one bad sample cannot flatten the whole chart.

    >>> print(ascii_bar_chart({"a": 2.0, "b": 1.0}, width=4))
    a  ████  2
    b  ██    1
    """
    if not values:
        return "(no data)"
    if max_value is not None:
        peak = max_value
    else:
        finite = [
            v for v in values.values() if math.isfinite(v) and v > 0
        ]
        peak = max(finite) if finite else 0.0
    peak = max(peak, 1e-12)
    label_width = max(len(str(label)) for label in values)
    lines = []
    for label, value in values.items():
        note = ""
        if not math.isfinite(value):
            filled = 0.0
            note = "  (non-finite)"
        elif value < 0:
            filled = 0.0
            note = "  (< 0)"
        else:
            filled = min(value / peak, 1.0) * width
        bar = _BAR * int(filled)
        if filled - int(filled) >= 0.5:
            bar += _HALF
        bar = bar.ljust(width)
        rendered = _format_number(value)
        lines.append(
            f"{str(label):<{label_width}}  {bar}  {rendered}{unit}{note}"
        )
    return "\n".join(lines)


def span_tree(
    rows: Sequence[tuple[int, str, float, Mapping]],
    min_fraction: float = 0.0,
) -> str:
    """Render tracer rows as an indented stage-timing tree.

    ``rows`` are ``(depth, name, seconds, attrs)`` tuples in start
    order (see :meth:`repro.telemetry.Tracer.tree_rows`).  Durations
    print in milliseconds with each span's share of its *root* span;
    ``min_fraction`` hides spans below that share (roots always show).

    >>> print(span_tree([(0, "epoch", 0.2, {}), (1, "dataplane", 0.15, {})]))
    epoch           200.0ms 100.0%
      dataplane     150.0ms  75.0%
    """
    if not rows:
        return "(no spans)"
    root_seconds = 0.0
    kept: list[tuple[int, str, float, float, str]] = []
    for depth, name, seconds, attrs in rows:
        if depth == 0:
            root_seconds = max(seconds, 1e-12)
        fraction = seconds / root_seconds if root_seconds else 0.0
        if depth > 0 and fraction < min_fraction:
            continue
        attr_text = (
            " [" + " ".join(f"{k}={v}" for k, v in attrs.items()) + "]"
            if attrs
            else ""
        )
        kept.append((depth, name, seconds, fraction, attr_text))
    name_width = max(len("  " * d + n) for d, n, *_ in kept)
    lines = []
    for depth, name, seconds, fraction, attr_text in kept:
        indented = ("  " * depth + name).ljust(name_width)
        lines.append(
            f"{indented}  {seconds * 1e3:>8.1f}ms {fraction:>6.1%}"
            f"{attr_text}"
        )
    return "\n".join(lines)


def comparison_table(
    rows: Mapping[str, Mapping[str, float]],
    columns: Sequence[str] | None = None,
    formats: Mapping[str, str] | None = None,
) -> str:
    """Render ``{row: {column: value}}`` as an aligned text table.

    ``formats`` maps column names to format specs (default ``.3g``);
    use e.g. ``{"recall": ".1%"}`` for percentages.
    """
    if not rows:
        return "(no data)"
    if columns is None:
        columns = list(next(iter(rows.values())))
    formats = formats or {}
    label_width = max(len(str(label)) for label in rows)
    col_width = {
        column: max(
            len(column),
            max(
                len(_apply_format(values.get(column), formats.get(column)))
                for values in rows.values()
            ),
        )
        for column in columns
    }
    header = " " * label_width + "  " + "  ".join(
        f"{column:>{col_width[column]}}" for column in columns
    )
    lines = [header, "-" * len(header)]
    for label, values in rows.items():
        cells = "  ".join(
            f"{_apply_format(values.get(column), formats.get(column)):>{col_width[column]}}"
            for column in columns
        )
        lines.append(f"{str(label):<{label_width}}  {cells}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line trend: ``sparkline([1, 5, 3])`` -> ``'▁█▄'``."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    low = min(values)
    high = max(values)
    span = max(high - low, 1e-12)
    return "".join(
        blocks[int((value - low) / span * (len(blocks) - 1))]
        for value in values
    )


def metrics_summary(registry, prefix: str = "") -> str:
    """Digest a :class:`~repro.telemetry.MetricsRegistry` for humans.

    Counters and gauges print their cross-label totals; histograms
    print ``p50/p95/p99`` quantile estimates plus the observation
    count — never raw bucket dumps, which are unreadable at a glance
    and belong in the Prometheus/JSON exports.  ``prefix`` filters
    family names.
    """
    counter_lines: list[str] = []
    histogram_lines: list[str] = []
    for family in registry.families():
        if prefix and not family.name.startswith(prefix):
            continue
        if family.kind == "histogram":
            for labels, child in family.samples():
                if child.count == 0:
                    continue
                quantiles = child.quantiles()
                label_text = (
                    " {"
                    + ",".join(
                        f"{k}={v}" for k, v in sorted(labels.items())
                    )
                    + "}"
                    if labels
                    else ""
                )
                histogram_lines.append(
                    f"  {family.name}{label_text}  "
                    + "/".join(
                        _format_number(quantiles[q])
                        for q in ("p50", "p95", "p99")
                    )
                    + f"  (n={child.count})"
                )
        else:
            total = family.total()
            if total:
                counter_lines.append(
                    f"  {family.name}  {_format_number(total)}"
                )
    sections = []
    if counter_lines:
        sections.append("totals:\n" + "\n".join(counter_lines))
    if histogram_lines:
        sections.append(
            "histograms (p50/p95/p99):\n" + "\n".join(histogram_lines)
        )
    return "\n".join(sections) if sections else "(no metrics)"


def dashboard_frame(
    epoch_rows: Sequence[Mapping[str, float]],
    registry=None,
    width: int = 30,
) -> str:
    """One frame of the live ``repro dash`` display.

    ``epoch_rows`` is the run's history — one mapping per epoch with
    numeric fields (e.g. ``throughput_gbps``, ``relative_error``,
    ``breaches``); each field renders as a sparkline of its history
    plus the latest value.  ``registry`` appends the accuracy gauge
    block when given.
    """
    if not epoch_rows:
        return "(no epochs yet)"
    latest = epoch_rows[-1]
    lines = [f"epoch {len(epoch_rows) - 1}"]
    fields = [key for key in latest if key != "epoch"]
    name_width = max((len(k) for k in fields), default=0)
    for key in fields:
        history = [
            float(row[key])
            for row in epoch_rows
            if row.get(key) is not None
            and math.isfinite(float(row[key]))
        ]
        if not history:
            continue
        trend = sparkline(history[-width:])
        lines.append(
            f"{key:<{name_width}}  {trend:<{width}}  "
            f"{_format_number(history[-1])}"
        )
    if registry is not None:
        accuracy = metrics_summary(
            registry, prefix="sketchvisor_accuracy"
        )
        if accuracy != "(no metrics)":
            lines.append("accuracy:")
            lines.append(accuracy)
        breaches = registry.total("sketchvisor_slo_breaches_total")
        if breaches:
            lines.append(f"slo breaches: {_format_number(breaches)}")
    return "\n".join(lines)


def _format_number(value: float) -> str:
    if not math.isfinite(value):
        return str(value)
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.3g}"


def _apply_format(value, spec: str | None) -> str:
    if value is None:
        return "-"
    if spec:
        return format(value, spec)
    return _format_number(float(value))
