"""MRAC [26]: flow size distribution from an array of counters.

A single row of counters; every packet increments one counter chosen by
hashing the flow.  The *flow size distribution* (number of flows with
each packet count) is recovered from the histogram of counter values by
deconvolving the hash-collision process.

Recovery here uses the compound-Poisson inversion that underlies Kumar
et al.'s EM estimator: with ``n`` flows in ``m`` counters, each counter
receives ``Poisson(n/m)`` flows, so the counter-value PGF is
``C(x) = exp(lambda * (F(x) - 1))`` with ``F`` the flow-size PMF.
Taking the formal power-series logarithm of the empirical counter-value
distribution therefore yields ``lambda * f_s`` directly — a closed-form
fixed point of the EM iteration, computed by the standard
``C * L' = C'`` recurrence.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError, MergeError
from repro.common.flow import FlowKey
from repro.common.hashing import HashFamily
from repro.sketches.base import CostProfile, Sketch

_COUNTER_BYTES = 8


def power_series_log(coefficients: np.ndarray) -> np.ndarray:
    """Formal power-series logarithm of ``sum_z c_z x^z`` (c_0 > 0).

    Uses the recurrence ``s*c_s = sum_{j=1}^{s} j * l_j * c_{s-j}``
    derived from ``C * L' = C'``.
    """
    c = np.asarray(coefficients, dtype=np.float64)
    if c[0] <= 0:
        raise ValueError("constant term must be positive for log")
    length = len(c)
    log_coeffs = np.zeros(length, dtype=np.float64)
    log_coeffs[0] = np.log(c[0])
    for s in range(1, length):
        acc = s * c[s]
        for j in range(1, s):
            acc -= j * log_coeffs[j] * c[s - j]
        log_coeffs[s] = acc / (s * c[0])
    return log_coeffs


class MRAC(Sketch):
    """MRAC counter array over 5-tuple flows (packet counts).

    Parameters
    ----------
    width:
        Number of counters (paper: a single row of 4000).
    max_size:
        Largest flow size (in packets) tracked by the estimator; counter
        values above it are clamped into the last slot for decoding.
    """

    name = "mrac"
    low_rank = False
    key64_updates = True

    def __init__(self, width: int = 4000, max_size: int = 512, seed: int = 1):
        super().__init__(seed)
        if width < 1:
            raise ConfigError("width must be >= 1")
        if max_size < 1:
            raise ConfigError("max_size must be >= 1")
        self.width = width
        self.max_size = max_size
        self._hashes = HashFamily(1, seed)
        self.counters = np.zeros(width, dtype=np.float64)

    def update(self, flow: FlowKey, value: int) -> None:
        # MRAC counts packets, not bytes: `value` is ignored by design.
        self.counters[self._hashes.bucket(0, flow.key64, self.width)] += 1

    def update_key64(self, key64: int, value: int) -> None:
        self.counters[self._hashes.bucket(0, key64, self.width)] += 1

    def update_batch(self, keys64, values) -> None:
        """Vectorized packet-count update over a key64 column.

        Per-bucket increments are all +1, so a ``bincount`` of bucket
        hits adds exact integers — bit-identical to the scalar loop.
        """
        cols = self._hashes.buckets_array(keys64, self.width)[0]
        self.counters += np.bincount(cols, minlength=self.width).astype(
            np.float64
        )

    def inject(self, flow: FlowKey, value: int) -> None:
        """Recovery injection: convert recovered bytes to packets.

        The fast path tracks byte volumes; MRAC counts packets, so the
        recovered volume converts at the dataset mean packet size.
        """
        packets = max(1, round(value / 769.0))
        self.counters[
            self._hashes.bucket(0, flow.key64, self.width)
        ] += packets

    # ------------------------------------------------------------------
    def counter_histogram(self) -> np.ndarray:
        """``h[z]`` = number of counters holding value ``z``."""
        clamped = np.minimum(
            self.counters.astype(np.int64), self.max_size
        )
        return np.bincount(clamped, minlength=self.max_size + 1).astype(
            np.float64
        )

    def decode(self) -> dict[int, float]:
        """Estimated flow size distribution ``{packets: num_flows}``.

        Inverts the compound-Poisson collision process via the
        power-series log of the empirical counter-value distribution.
        """
        histogram = self.counter_histogram()
        if histogram[0] == 0:
            # Saturated array: no zero counters, the Poisson inversion
            # has no information — fall back to raw counter values.
            raw = np.bincount(
                self.counters.astype(np.int64), minlength=2
            )
            return {
                size: float(count)
                for size, count in enumerate(raw)
                if size > 0 and count > 0
            }
        pmf = histogram / histogram.sum()
        log_coeffs = power_series_log(pmf)
        estimate = np.maximum(log_coeffs * self.width, 0.0)
        # Deconvolution noise leaves a dust of fractional counts across
        # many sizes; sizes estimated at under half a flow are noise,
        # not signal, and would dominate the MRD metric if reported.
        return {
            size: float(estimate[size])
            for size in range(1, len(estimate))
            if estimate[size] > 0.5
        }

    def cardinality(self) -> float:
        """Distinct-flow estimate (sums the decoded distribution)."""
        return float(sum(self.decode().values()))

    # ------------------------------------------------------------------
    def merge(self, other: Sketch) -> None:
        self._check_mergeable(other)
        assert isinstance(other, MRAC)
        if other.width != self.width:
            raise MergeError("MRAC widths differ")
        self.counters += other.counters

    def to_matrix(self) -> np.ndarray:
        return self.counters.reshape(1, -1).copy()

    def load_matrix(self, matrix: np.ndarray) -> None:
        if matrix.shape != (1, self.width):
            raise ConfigError(
                f"matrix shape {matrix.shape} != (1, {self.width})"
            )
        self.counters = matrix.reshape(-1).astype(np.float64).copy()

    def matrix_positions(
        self, flow: FlowKey
    ) -> list[tuple[int, int, float]]:
        return [(0, self._hashes.bucket(0, flow.key64, self.width), 1.0)]

    def memory_bytes(self) -> int:
        return self.width * _COUNTER_BYTES

    def cost_profile(self) -> CostProfile:
        # The cheapest solution in the paper (404 cycles/packet):
        # one hash, one counter increment.
        return CostProfile(hashes=1, counter_updates=1)

    def clone_empty(self) -> "MRAC":
        return MRAC(self.width, self.max_size, self.seed)
