"""Deltoid [13]: heavy-hitter sketch with header-encoding counters.

Each bucket holds one *total* counter plus one counter per header bit
(104 bits for a 5-tuple).  A packet adds its size to the total and to
every bit-counter whose header bit is 1.  A bucket containing a single
flow above the threshold can then be *reversed*: bit ``b`` of the flow's
header is 1 iff the 1-side count exceeds the threshold while the 0-side
count does not.

Updating ~53 bit counters per row per packet is exactly the overhead the
paper measures: "Deltoid's main bottleneck is on updating its extra
counters ... more than 86% of CPU cycles" (§2.2), 10,454 cycles/packet.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError, MergeError
from repro.common.flow import FlowKey
from repro.common.hashing import HashFamily
from repro.sketches.base import CostProfile, Sketch

HEADER_BITS = 104
_COUNTER_BYTES = 8


class Deltoid(Sketch):
    """Deltoid sketch over 104-bit 5-tuple headers.

    Parameters
    ----------
    width:
        Buckets per row (paper: 4000 = 2 / 0.05%-threshold).
    depth:
        Rows (paper: 4, error probability 1/16).
    """

    name = "deltoid"
    low_rank = True  # Figure 5: ~32% of singular values reach <10% error

    def __init__(self, width: int = 4000, depth: int = 4, seed: int = 1):
        super().__init__(seed)
        if width < 1 or depth < 1:
            raise ConfigError("width and depth must be >= 1")
        self.width = width
        self.depth = depth
        self._hashes = HashFamily(depth, seed)
        # totals[r, j]; bits[r, b, j] for header bit b.
        self.totals = np.zeros((depth, width), dtype=np.float64)
        self.bits = np.zeros((depth, HEADER_BITS, width), dtype=np.float64)

    # ------------------------------------------------------------------
    def update(self, flow: FlowKey, value: int) -> None:
        header = flow.key104
        key64 = flow.key64
        set_bits = [b for b in range(HEADER_BITS) if (header >> b) & 1]
        for row, col in enumerate(self._hashes.buckets(key64, self.width)):
            self.totals[row, col] += value
            for bit in set_bits:
                self.bits[row, bit, col] += value

    def estimate(self, flow: FlowKey) -> float:
        """Count-Min-style upper-bound estimate from the total counters."""
        key64 = flow.key64
        return min(
            self.totals[row, col]
            for row, col in enumerate(
                self._hashes.buckets(key64, self.width)
            )
        )

    def decode(self, threshold: float) -> dict[FlowKey, float]:
        """Recover flows whose byte count exceeds ``threshold``.

        For every bucket with total above the threshold, attempt the
        bit-by-bit reversal.  Candidates are verified by re-hashing
        (they must map back to the bucket they were decoded from) and
        estimated with the row-minimum of their bucket totals.
        """
        candidates: dict[FlowKey, float] = {}
        for row in range(self.depth):
            heavy_cols = np.nonzero(self.totals[row] > threshold)[0]
            for col in heavy_cols:
                flow = self._reverse_bucket(row, int(col), threshold)
                if flow is None:
                    continue
                estimate = self.estimate(flow)
                if estimate > threshold:
                    candidates[flow] = estimate
        return candidates

    def _reverse_bucket(
        self, row: int, col: int, threshold: float
    ) -> FlowKey | None:
        total = self.totals[row, col]
        header = 0
        for bit in range(HEADER_BITS):
            one_side = self.bits[row, bit, col]
            zero_side = total - one_side
            one_heavy = one_side > threshold
            zero_heavy = zero_side > threshold
            if one_heavy == zero_heavy:
                # Ambiguous (two heavy flows collided) or nothing heavy.
                return None
            if one_heavy:
                header |= 1 << bit
        flow = FlowKey.from_key104(header)
        if self._hashes.bucket(row, flow.key64, self.width) != col:
            return None  # failed verification: decoded garbage
        return flow

    # ------------------------------------------------------------------
    def merge(self, other: Sketch) -> None:
        self._check_mergeable(other)
        assert isinstance(other, Deltoid)
        if (other.width, other.depth) != (self.width, self.depth):
            raise MergeError("Deltoid shapes differ")
        self.totals += other.totals
        self.bits += other.bits

    def to_matrix(self) -> np.ndarray:
        """Rows = depth * (1 + HEADER_BITS) counter planes, cols = buckets."""
        planes = [self.totals[row : row + 1] for row in range(self.depth)]
        matrix_rows = []
        for row in range(self.depth):
            matrix_rows.append(planes[row])
            matrix_rows.append(self.bits[row])
        return np.vstack(matrix_rows)

    def load_matrix(self, matrix: np.ndarray) -> None:
        expected = (self.depth * (1 + HEADER_BITS), self.width)
        if matrix.shape != expected:
            raise ConfigError(f"matrix shape {matrix.shape} != {expected}")
        stride = 1 + HEADER_BITS
        for row in range(self.depth):
            block = matrix[row * stride : (row + 1) * stride]
            self.totals[row] = block[0]
            self.bits[row] = block[1:]

    def matrix_positions(
        self, flow: FlowKey
    ) -> list[tuple[int, int, float]]:
        header = flow.key104
        key64 = flow.key64
        stride = 1 + HEADER_BITS
        positions: list[tuple[int, int, float]] = []
        for row, col in enumerate(self._hashes.buckets(key64, self.width)):
            positions.append((row * stride, col, 1.0))
            for bit in range(HEADER_BITS):
                if (header >> bit) & 1:
                    positions.append((row * stride + 1 + bit, col, 1.0))
        return positions

    def memory_bytes(self) -> int:
        return self.depth * self.width * (1 + HEADER_BITS) * _COUNTER_BYTES

    def cost_profile(self) -> CostProfile:
        # One hash per row; one total + ~half the header bits set per
        # row (random headers average 52 one-bits of 104).
        return CostProfile(
            hashes=self.depth,
            counter_updates=self.depth * (1 + HEADER_BITS / 2),
        )

    def clone_empty(self) -> "Deltoid":
        return Deltoid(self.width, self.depth, self.seed)
