"""FlowRadar [28]: Bloom filter + XOR-encoded counting table.

Every cell of the counting table holds three fields: ``flow_xor`` (XOR of
the 104-bit headers of all flows hashed there), ``flow_count`` (number of
distinct flows), and ``byte_count`` (total bytes).  A Bloom filter in
front detects new flows.  Decoding peels *pure* cells (``flow_count ==
1``): the cell's XOR field *is* the flow header and its byte count is the
flow's size; removing the flow from its other cells exposes new pure
cells, exactly like erasure decoding of an LT code.

The paper measures FlowRadar at 2,584 cycles/packet with >67% in hash
computations (Bloom filter + cell hashes).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.common.errors import ConfigError, MergeError
from repro.common.flow import FlowKey
from repro.common.hashing import HashFamily
from repro.sketches.base import CostProfile, Sketch
from repro.sketches.bloom import BloomFilter


class FlowRadar(Sketch):
    """FlowRadar over 5-tuple flows.

    Parameters
    ----------
    bloom_bits:
        Bloom filter length (paper: 100,000).
    num_cells:
        Counting table length (paper: 40,000).
    num_hashes:
        Hash functions for both structures (paper: 4).
    """

    name = "flowradar"
    low_rank = False  # flat counting table: no exploitable rank structure

    def __init__(
        self,
        bloom_bits: int = 100_000,
        num_cells: int = 40_000,
        num_hashes: int = 4,
        seed: int = 1,
        count_packets: bool = False,
    ):
        super().__init__(seed)
        if num_cells < 1:
            raise ConfigError("num_cells must be >= 1")
        #: When True, cells count packets instead of bytes (the original
        #: FlowRadar's PacketCount field) — used by the flow size
        #: distribution task, whose ground truth is in packets.
        self.count_packets = count_packets
        self.bloom = BloomFilter(bloom_bits, num_hashes, seed=seed ^ 0xB100)
        self.num_cells = num_cells
        self.num_hashes = num_hashes
        self._hashes = HashFamily(num_hashes, seed)
        self.flow_xor = [0] * num_cells
        self.flow_count = np.zeros(num_cells, dtype=np.int64)
        self.byte_count = np.zeros(num_cells, dtype=np.float64)

    # ------------------------------------------------------------------
    def _cells(self, key64: int) -> list[int]:
        return self._hashes.buckets(key64, self.num_cells)

    def update(self, flow: FlowKey, value: int) -> None:
        key64 = flow.key64
        cells = self._cells(key64)
        if not self.bloom.add(key64):
            header = flow.key104
            for cell in cells:
                self.flow_xor[cell] ^= header
                self.flow_count[cell] += 1
        increment = 1 if self.count_packets else value
        for cell in cells:
            self.byte_count[cell] += increment

    def inject(self, flow: FlowKey, value: int) -> None:
        """Recovery injection; converts bytes to packets in packet mode."""
        if not self.count_packets:
            self.update(flow, value)
            return
        key64 = flow.key64
        cells = self._cells(key64)
        if not self.bloom.add(key64):
            header = flow.key104
            for cell in cells:
                self.flow_xor[cell] ^= header
                self.flow_count[cell] += 1
        packets = max(1, round(value / 769.0))
        for cell in cells:
            self.byte_count[cell] += packets

    # ------------------------------------------------------------------
    def decode(self) -> tuple[dict[FlowKey, float], bool]:
        """Peel pure cells to recover ``{flow: bytes}``.

        Returns the decoded flows and a flag that is True when the table
        decoded completely (no undecodable residue).  Decoding mutates a
        working copy, never the sketch itself.
        """
        flow_xor = list(self.flow_xor)
        flow_count = self.flow_count.copy()
        byte_count = self.byte_count.copy()
        decoded: dict[FlowKey, float] = {}

        pure = deque(
            cell
            for cell in range(self.num_cells)
            if flow_count[cell] == 1
        )
        while pure:
            cell = pure.popleft()
            if flow_count[cell] != 1:
                continue
            header = flow_xor[cell]
            size = float(byte_count[cell])
            try:
                flow = FlowKey.from_key104(header)
            except ValueError:
                # Corrupted cell (should not happen without bit errors).
                flow_count[cell] = -1
                continue
            key64 = flow.key64
            cells = self._cells(key64)
            if cell not in cells:
                # XOR residue that is not a real flow: decoding is stuck
                # on this cell (a collision signature), mark and move on.
                flow_count[cell] = -1
                continue
            decoded[flow] = decoded.get(flow, 0.0) + size
            for other in cells:
                flow_xor[other] ^= header
                flow_count[other] -= 1
                byte_count[other] -= size
                if flow_count[other] == 1:
                    pure.append(other)
        complete = bool((flow_count <= 0).all())
        return decoded, complete

    def estimate(self, flow: FlowKey) -> float:
        """Count-Min-style upper bound from the byte counters."""
        return min(
            float(self.byte_count[cell])
            for cell in self._cells(flow.key64)
        )

    # ------------------------------------------------------------------
    def merge(self, other: Sketch) -> None:
        """Merge a disjoint-flow FlowRadar (network-wide aggregation).

        Hosts monitor disjoint flow sets (§3.1), so cell-wise XOR /
        addition preserves decode semantics.
        """
        self._check_mergeable(other)
        assert isinstance(other, FlowRadar)
        if (other.num_cells, other.num_hashes, other.count_packets) != (
            self.num_cells,
            self.num_hashes,
            self.count_packets,
        ):
            raise MergeError("FlowRadar configurations differ")
        self.bloom.merge(other.bloom)
        for cell in range(self.num_cells):
            self.flow_xor[cell] ^= other.flow_xor[cell]
        self.flow_count += other.flow_count
        self.byte_count += other.byte_count

    def to_matrix(self) -> np.ndarray:
        return self.byte_count.reshape(1, -1).copy()

    def load_matrix(self, matrix: np.ndarray) -> None:
        if matrix.shape != (1, self.num_cells):
            raise ConfigError(
                f"matrix shape {matrix.shape} != (1, {self.num_cells})"
            )
        self.byte_count = matrix.reshape(-1).astype(np.float64).copy()

    def matrix_positions(
        self, flow: FlowKey
    ) -> list[tuple[int, int, float]]:
        return [(0, cell, 1.0) for cell in self._cells(flow.key64)]

    def memory_bytes(self) -> int:
        # 13-byte XOR field + 4-byte flow count + 8-byte byte count.
        return self.bloom.memory_bytes() + self.num_cells * (13 + 4 + 8)

    def cost_profile(self) -> CostProfile:
        # Bloom hashes + cell hashes every packet; XOR/count writes only
        # on new flows (amortized ~0.1/packet) so counter updates are the
        # per-packet byte-count writes.
        return CostProfile(
            hashes=self.bloom.num_hashes + self.num_hashes,
            counter_updates=self.num_hashes,
            memory_words=self.bloom.num_hashes,
        )

    def clone_empty(self) -> "FlowRadar":
        return FlowRadar(
            bloom_bits=self.bloom.num_bits,
            num_cells=self.num_cells,
            num_hashes=self.num_hashes,
            seed=self.seed,
            count_packets=self.count_packets,
        )

    def reset(self) -> None:
        self.bloom.reset()
        self.flow_xor = [0] * self.num_cells
        self.flow_count[:] = 0
        self.byte_count[:] = 0.0
