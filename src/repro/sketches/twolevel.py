"""TwoLevel sketch [56] for DDoS and superspreader detection.

Two levels of hashing: an outer Count-Min over the *aggregate* key (the
destination IP for DDoS, the source IP for superspreaders) whose buckets
each hold a small inner counter array keyed by the *spread* key (the
other endpoint).  The number of distinct spread keys for an aggregate is
estimated by linear counting over its inner arrays.  A Reversible Sketch
over the aggregate key supplies the candidate IPs to query.

Per §4.2 the structure is kept in *volume form* — counters updated by
byte counts instead of bits — so the fast path and the recovery treat it
like every other sketch; linear counting only needs zero/non-zero.

Paper configuration (§7.1): outer Count-Min 2 x 4000, inner arrays
2 x 250, RevSketch 2 x 4096 over 8-bit words of the 32-bit IP.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import ConfigError, MergeError
from repro.common.flow import FlowKey
from repro.common.hashing import HashFamily, mix64
from repro.sketches.base import CostProfile, Sketch
from repro.sketches.revsketch import ReversibleSketch

_COUNTER_BYTES = 8


class TwoLevelSketch(Sketch):
    """TwoLevel sketch over (aggregate IP, spread IP) pairs.

    Parameters
    ----------
    mode:
        ``"ddos"`` aggregates by destination and spreads by source;
        ``"superspreader"`` is the mirror image.
    outer_width, outer_depth:
        Count-Min dimensions over the aggregate key.
    inner_width, inner_depth:
        Inner counter-array dimensions per outer bucket.
    """

    name = "twolevel"
    low_rank = True  # Figure 5: ~15% of singular values for <10% error

    def __init__(
        self,
        mode: str = "ddos",
        outer_width: int = 1024,
        outer_depth: int = 2,
        inner_width: int = 64,
        inner_depth: int = 2,
        seed: int = 1,
    ):
        super().__init__(seed)
        if mode not in ("ddos", "superspreader"):
            raise ConfigError(f"unknown mode {mode!r}")
        if min(outer_width, outer_depth, inner_width, inner_depth) < 1:
            raise ConfigError("all dimensions must be >= 1")
        self.mode = mode
        self.outer_width = outer_width
        self.outer_depth = outer_depth
        self.inner_width = inner_width
        self.inner_depth = inner_depth
        self._outer_hashes = HashFamily(outer_depth, seed)
        self._inner_hashes = HashFamily(inner_depth, mix64(seed ^ 0x1221))
        self.counters = np.zeros(
            (outer_depth, outer_width, inner_depth, inner_width),
            dtype=np.float64,
        )
        # Depth 4 (vs the paper's 2 rows) keeps reverse hashing's
        # candidate beam tractable at permissive volume thresholds; the
        # memory delta is two extra 4096-counter rows.
        self.candidates = ReversibleSketch(
            word_bits=8,
            num_words=4,
            subindex_bits=3,
            depth=4,
            seed=mix64(seed ^ 0x2112),
        )

    @classmethod
    def paper_config(cls, mode: str = "ddos", seed: int = 1) -> "TwoLevelSketch":
        """The exact §7.1 configuration (2x4000 outer, 2x250 inner)."""
        return cls(
            mode=mode,
            outer_width=4000,
            outer_depth=2,
            inner_width=250,
            inner_depth=2,
            seed=seed,
        )

    # ------------------------------------------------------------------
    def _keys(self, flow: FlowKey) -> tuple[int, int]:
        if self.mode == "ddos":
            return flow.dst_ip, flow.src_ip
        return flow.src_ip, flow.dst_ip

    def update(self, flow: FlowKey, value: int) -> None:
        aggregate, spread = self._keys(flow)
        self.update_pair(aggregate, spread, value)

    def update_pair(self, aggregate: int, spread: int, value: int) -> None:
        """Record ``value`` bytes from ``spread`` toward ``aggregate``."""
        agg64 = mix64(aggregate)
        spread64 = mix64(spread)
        inner_cols = self._inner_hashes.buckets(spread64, self.inner_width)
        for row, col in enumerate(
            self._outer_hashes.buckets(agg64, self.outer_width)
        ):
            for inner_row, inner_col in enumerate(inner_cols):
                self.counters[row, col, inner_row, inner_col] += value
        self.candidates.update_key(aggregate, value)

    # ------------------------------------------------------------------
    def estimate_spread(self, aggregate: int) -> float:
        """Estimated number of distinct spread keys for ``aggregate``.

        Linear counting over each inner array (non-zero counters are
        "set bits" in volume form), averaged across inner rows, then
        minimized across outer rows to shed collision inflation.
        """
        agg64 = mix64(aggregate)
        estimates = []
        for row, col in enumerate(
            self._outer_hashes.buckets(agg64, self.outer_width)
        ):
            row_estimates = []
            for inner_row in range(self.inner_depth):
                array = self.counters[row, col, inner_row]
                zeros = int((array == 0).sum())
                m = self.inner_width
                if zeros == 0:
                    row_estimates.append(float(m * math.log(m)))
                else:
                    row_estimates.append(m * math.log(m / zeros))
            estimates.append(sum(row_estimates) / len(row_estimates))
        return min(estimates)

    def detect(
        self,
        spread_threshold: float,
        volume_threshold: float | None = None,
    ) -> dict[int, float]:
        """Aggregate keys with estimated spread above ``spread_threshold``.

        Candidates come from reversing the candidate sketch above
        ``volume_threshold``.  The default starts at the 95th percentile
        of candidate-counter values — aggregates with many spread keys
        necessarily accumulate volume across them — and doubles the cut
        whenever reverse hashing would explode (too many heavy buckets
        make the candidate space ambiguous).
        """
        if volume_threshold is None:
            # An aggregate contacted by T distinct spread keys received
            # at least T minimum-size packets, so T * 64 bytes is a
            # sound volume floor for candidates.
            counters = self.candidates.counters
            volume_threshold = max(
                spread_threshold * 64.0, float(counters.mean())
            )
        decoded: dict[int, float] | None = None
        threshold = volume_threshold
        for _attempt in range(20):
            try:
                decoded = self.candidates.decode(threshold)
                break
            except ConfigError:
                threshold *= 2.0
        if decoded is None:
            return {}
        return {
            aggregate: spread
            for aggregate in decoded
            if (spread := self.estimate_spread(aggregate))
            > spread_threshold
        }

    # ------------------------------------------------------------------
    def merge(self, other: Sketch) -> None:
        self._check_mergeable(other)
        assert isinstance(other, TwoLevelSketch)
        if (
            other.mode,
            other.outer_width,
            other.outer_depth,
            other.inner_width,
            other.inner_depth,
        ) != (
            self.mode,
            self.outer_width,
            self.outer_depth,
            self.inner_width,
            self.inner_depth,
        ):
            raise MergeError("TwoLevel configurations differ")
        self.counters += other.counters
        self.candidates.merge(other.candidates)

    def to_matrix(self) -> np.ndarray:
        """(outer_depth * outer_width) x (inner_depth * inner_width).

        One matrix row per outer bucket: rows of buckets that only see
        background small-flow noise are statistically similar, which is
        the low-rank structure Figure 5 reports for TwoLevel (~15% of
        singular values suffice).
        """
        return self.counters.reshape(
            self.outer_depth * self.outer_width,
            self.inner_depth * self.inner_width,
        ).copy()

    def load_matrix(self, matrix: np.ndarray) -> None:
        expected = (
            self.outer_depth * self.outer_width,
            self.inner_depth * self.inner_width,
        )
        if matrix.shape != expected:
            raise ConfigError(f"matrix shape {matrix.shape} != {expected}")
        self.counters = (
            matrix.reshape(
                self.outer_depth,
                self.outer_width,
                self.inner_depth,
                self.inner_width,
            )
            .astype(np.float64)
            .copy()
        )

    def matrix_positions(
        self, flow: FlowKey
    ) -> list[tuple[int, int, float]]:
        aggregate, spread = self._keys(flow)
        agg64 = mix64(aggregate)
        spread64 = mix64(spread)
        inner_cols = self._inner_hashes.buckets(spread64, self.inner_width)
        positions: list[tuple[int, int, float]] = []
        for row, col in enumerate(
            self._outer_hashes.buckets(agg64, self.outer_width)
        ):
            for inner_row, inner_col in enumerate(inner_cols):
                positions.append(
                    (
                        row * self.outer_width + col,
                        inner_row * self.inner_width + inner_col,
                        1.0,
                    )
                )
        return positions

    def memory_bytes(self) -> int:
        inner = (
            self.outer_depth
            * self.outer_width
            * self.inner_depth
            * self.inner_width
            * _COUNTER_BYTES
        )
        return inner + self.candidates.memory_bytes()

    def cost_profile(self) -> CostProfile:
        inner_updates = self.outer_depth * self.inner_depth
        candidate_hashes = (
            self.candidates.depth * self.candidates.num_words
        )
        return CostProfile(
            hashes=self.outer_depth + self.inner_depth + candidate_hashes,
            counter_updates=inner_updates + self.candidates.depth,
        )

    def clone_empty(self) -> "TwoLevelSketch":
        return TwoLevelSketch(
            mode=self.mode,
            outer_width=self.outer_width,
            outer_depth=self.outer_depth,
            inner_width=self.inner_width,
            inner_depth=self.inner_depth,
            seed=self.seed,
        )

    def reset(self) -> None:
        self.counters[:] = 0.0
        self.candidates.counters[:] = 0.0
