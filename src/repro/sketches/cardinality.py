"""Cardinality estimators: FM [20], kMin [2], Linear Counting [55].

All three estimate the number of distinct flows in an epoch (§2.1).
FM and Linear Counting are kept in *volume form* (§4.2): registers are
byte counters rather than bits, and a register is "set" iff non-zero —
this is what lets the fast path and the compressive-sensing recovery
treat them like any other counter sketch.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import ConfigError, MergeError
from repro.common.flow import FlowKey
from repro.common.hashing import HashFamily, mix64, trailing_zeros_array
from repro.sketches.base import CostProfile, Sketch

_COUNTER_BYTES = 8
_FM_PHI = 0.77351  # Flajolet-Martin correction constant
_FM_REGISTER_BITS = 32


def _trailing_zeros(value: int) -> int:
    if value == 0:
        return 64
    return (value & -value).bit_length() - 1


class FMSketch(Sketch):
    """Flajolet-Martin probabilistic counting (PCSA) in volume form.

    ``num_registers`` register groups per row; a flow picks a register
    by one hash and a bit position geometrically (trailing zeros of a
    second hash).  The estimate per row is ``m * 2^R / phi`` where ``R``
    averages the position of the lowest *zero* counter per register.
    """

    name = "fm"
    low_rank = False
    key64_updates = True

    def __init__(
        self, num_registers: int = 1024, depth: int = 4, seed: int = 1
    ):
        super().__init__(seed)
        if num_registers < 1 or depth < 1:
            raise ConfigError("num_registers and depth must be >= 1")
        self.num_registers = num_registers
        self.depth = depth
        self._register_hashes = HashFamily(depth, seed)
        self._position_hashes = HashFamily(depth, mix64(seed ^ 0xF1A))
        self.counters = np.zeros(
            (depth, num_registers, _FM_REGISTER_BITS), dtype=np.float64
        )

    def update(self, flow: FlowKey, value: int) -> None:
        self.update_key64(flow.key64, value)

    def update_key64(self, key64: int, value: int) -> None:
        for row in range(self.depth):
            register = self._register_hashes.bucket(
                row, key64, self.num_registers
            )
            position = min(
                _trailing_zeros(
                    self._position_hashes.hash_value(row, key64)
                ),
                _FM_REGISTER_BITS - 1,
            )
            self.counters[row, register, position] += value

    def update_batch(self, keys64, values) -> None:
        """Vectorized register update over a key64 column (bit-identical)."""
        registers = self._register_hashes.buckets_array(
            keys64, self.num_registers
        )
        draws = self._position_hashes.hash_values_array(keys64)
        values = np.asarray(values, dtype=np.float64)
        flat = self.counters.reshape(self.depth, -1)
        for row in range(self.depth):
            positions = np.minimum(
                trailing_zeros_array(draws[row]), _FM_REGISTER_BITS - 1
            )
            np.add.at(
                flat[row],
                registers[row] * _FM_REGISTER_BITS + positions,
                values,
            )

    def estimate(self) -> float:
        """Estimated distinct-key count, averaged across rows.

        Applies the standard small-range correction: the asymptotic
        ``m * 2^R / phi`` formula overestimates badly below ~4 keys per
        register, so while a meaningful fraction of registers is still
        empty, each row estimates by linear counting over its empty
        registers instead (the same hybrid HyperLogLog later adopted).
        """
        estimates = []
        for row in range(self.depth):
            nonzero = self.counters[row] > 0
            empty = int((~nonzero.any(axis=1)).sum())
            m = self.num_registers
            if empty / m > 0.05:
                estimates.append(m * math.log(m / max(empty, 1)))
                continue
            # Position of the lowest zero bit per register.
            total_r = 0.0
            for register in range(m):
                bits = nonzero[register]
                zeros = np.nonzero(~bits)[0]
                total_r += (
                    float(zeros[0]) if len(zeros) else _FM_REGISTER_BITS
                )
            mean_r = total_r / m
            estimates.append(m * (2.0**mean_r) / _FM_PHI)
        return float(np.mean(estimates))

    def merge(self, other: Sketch) -> None:
        self._check_mergeable(other)
        assert isinstance(other, FMSketch)
        if (other.num_registers, other.depth) != (
            self.num_registers,
            self.depth,
        ):
            raise MergeError("FM configurations differ")
        self.counters += other.counters

    def to_matrix(self) -> np.ndarray:
        return self.counters.reshape(
            self.depth, self.num_registers * _FM_REGISTER_BITS
        ).copy()

    def load_matrix(self, matrix: np.ndarray) -> None:
        expected = (self.depth, self.num_registers * _FM_REGISTER_BITS)
        if matrix.shape != expected:
            raise ConfigError(f"matrix shape {matrix.shape} != {expected}")
        self.counters = (
            matrix.reshape(
                self.depth, self.num_registers, _FM_REGISTER_BITS
            )
            .astype(np.float64)
            .copy()
        )

    def matrix_positions(
        self, flow: FlowKey
    ) -> list[tuple[int, int, float]]:
        key64 = flow.key64
        positions = []
        for row in range(self.depth):
            register = self._register_hashes.bucket(
                row, key64, self.num_registers
            )
            position = min(
                _trailing_zeros(
                    self._position_hashes.hash_value(row, key64)
                ),
                _FM_REGISTER_BITS - 1,
            )
            positions.append(
                (row, register * _FM_REGISTER_BITS + position, 1.0)
            )
        return positions

    def memory_bytes(self) -> int:
        return (
            self.depth
            * self.num_registers
            * _FM_REGISTER_BITS
            * _COUNTER_BYTES
        )

    def cost_profile(self) -> CostProfile:
        return CostProfile(
            hashes=2 * self.depth, counter_updates=self.depth
        )

    def clone_empty(self) -> "FMSketch":
        return FMSketch(self.num_registers, self.depth, self.seed)


class KMinSketch(Sketch):
    """Bottom-k distinct counting [2]: keep the k smallest hash values.

    The estimate is ``(k - 1) / v_k`` with ``v_k`` the k-th smallest
    normalized hash, averaged over ``depth`` independent rows.  Not a
    counter matrix — recovery reaches it through flow injection
    (``update``), never matrix interpolation.
    """

    name = "kmin"
    low_rank = False
    # Bottom-k state is a running min-set, but insertion order does not
    # change the surviving k minima — the generic scalar fallback batch
    # path applies.
    key64_updates = True

    def __init__(self, k: int = 1024, depth: int = 4, seed: int = 1):
        super().__init__(seed)
        if k < 2 or depth < 1:
            raise ConfigError("k must be >= 2 and depth >= 1")
        self.k = k
        self.depth = depth
        self._hashes = HashFamily(depth, seed)
        # Per row: dict of the k smallest normalized hash values seen.
        self._mins: list[dict[float, None]] = [{} for _ in range(depth)]
        self._thresholds = [float("inf")] * depth

    def update(self, flow: FlowKey, value: int) -> None:
        self.update_key64(flow.key64, value)

    def update_key64(self, key64: int, value: int) -> None:
        for row in range(self.depth):
            draw = self._hashes.uniform01(row, key64)
            if draw >= self._thresholds[row]:
                continue
            row_mins = self._mins[row]
            if draw in row_mins:
                continue
            row_mins[draw] = None
            if len(row_mins) > self.k:
                largest = max(row_mins)
                del row_mins[largest]
                self._thresholds[row] = max(row_mins)

    def estimate(self) -> float:
        estimates = []
        for row in range(self.depth):
            row_mins = self._mins[row]
            if len(row_mins) < self.k:
                estimates.append(float(len(row_mins)))
            else:
                estimates.append((self.k - 1) / max(row_mins))
        return float(np.mean(estimates))

    def merge(self, other: Sketch) -> None:
        self._check_mergeable(other)
        assert isinstance(other, KMinSketch)
        if (other.k, other.depth) != (self.k, self.depth):
            raise MergeError("kMin configurations differ")
        for row in range(self.depth):
            merged = dict(self._mins[row])
            merged.update(other._mins[row])
            smallest = sorted(merged)[: self.k]
            self._mins[row] = dict.fromkeys(smallest)
            self._thresholds[row] = (
                smallest[-1] if len(smallest) == self.k else float("inf")
            )

    def to_matrix(self) -> np.ndarray:
        matrix = np.zeros((self.depth, self.k), dtype=np.float64)
        for row in range(self.depth):
            values = sorted(self._mins[row])
            matrix[row, : len(values)] = values
        return matrix

    def load_matrix(self, matrix: np.ndarray) -> None:
        if matrix.shape != (self.depth, self.k):
            raise ConfigError(
                f"matrix shape {matrix.shape} != {(self.depth, self.k)}"
            )
        for row in range(self.depth):
            values = [float(v) for v in matrix[row] if v > 0]
            self._mins[row] = dict.fromkeys(sorted(values)[: self.k])
            self._thresholds[row] = (
                max(self._mins[row])
                if len(self._mins[row]) == self.k
                else float("inf")
            )

    def memory_bytes(self) -> int:
        return self.depth * self.k * _COUNTER_BYTES

    def cost_profile(self) -> CostProfile:
        return CostProfile(hashes=self.depth, counter_updates=self.depth)

    def clone_empty(self) -> "KMinSketch":
        return KMinSketch(self.k, self.depth, self.seed)

    def reset(self) -> None:
        self._mins = [{} for _ in range(self.depth)]
        self._thresholds = [float("inf")] * self.depth


class HyperLogLog(Sketch):
    """HyperLogLog (Flajolet et al. 2007) — extension beyond Table 1.

    The modern successor to FM: each register keeps only the *maximum*
    leading-zero rank seen, and the estimate is the bias-corrected
    harmonic mean ``alpha_m * m^2 / sum(2^-M_j)``, with linear counting
    below ~2.5m (the small-range regime FM needs its correction for).
    Included because a downstream user reaching for cardinality today
    would expect it; kept out of the Table 1 registry, which mirrors
    the paper exactly.

    Register state is volume-form compatible: the register array holds
    byte counts per (register, rank) cell like FM, so fast-path
    conversion and recovery injection work unchanged.
    """

    name = "hll"
    low_rank = False
    key64_updates = True

    def __init__(
        self, num_registers: int = 1024, depth: int = 1, seed: int = 1
    ):
        super().__init__(seed)
        if num_registers < 16 or depth < 1:
            raise ConfigError("need >= 16 registers and depth >= 1")
        self.num_registers = num_registers
        self.depth = depth
        self._register_hashes = HashFamily(depth, seed)
        self._rank_hashes = HashFamily(depth, mix64(seed ^ 0x417))
        self.counters = np.zeros(
            (depth, num_registers, _FM_REGISTER_BITS), dtype=np.float64
        )

    @staticmethod
    def _alpha(m: int) -> float:
        if m >= 128:
            return 0.7213 / (1.0 + 1.079 / m)
        return {16: 0.673, 32: 0.697, 64: 0.709}.get(m, 0.7213)

    def update(self, flow: FlowKey, value: int) -> None:
        self.update_key64(flow.key64, value)

    def update_key64(self, key64: int, value: int) -> None:
        for row in range(self.depth):
            register = self._register_hashes.bucket(
                row, key64, self.num_registers
            )
            rank = min(
                _trailing_zeros(self._rank_hashes.hash_value(row, key64)),
                _FM_REGISTER_BITS - 1,
            )
            self.counters[row, register, rank] += value

    def update_batch(self, keys64, values) -> None:
        """Vectorized register update over a key64 column (bit-identical)."""
        registers = self._register_hashes.buckets_array(
            keys64, self.num_registers
        )
        draws = self._rank_hashes.hash_values_array(keys64)
        values = np.asarray(values, dtype=np.float64)
        flat = self.counters.reshape(self.depth, -1)
        for row in range(self.depth):
            ranks = np.minimum(
                trailing_zeros_array(draws[row]), _FM_REGISTER_BITS - 1
            )
            np.add.at(
                flat[row],
                registers[row] * _FM_REGISTER_BITS + ranks,
                values,
            )

    def estimate(self) -> float:
        estimates = []
        m = self.num_registers
        for row in range(self.depth):
            nonzero = self.counters[row] > 0
            # Register value = 1 + highest touched rank (0 if empty).
            registers = np.zeros(m)
            touched = nonzero.any(axis=1)
            if touched.any():
                highest = np.argmax(
                    nonzero[:, ::-1], axis=1
                )  # position from the top
                registers[touched] = (
                    _FM_REGISTER_BITS - highest[touched]
                )
            raw = (
                self._alpha(m)
                * m
                * m
                / float(np.sum(2.0 ** (-registers)))
            )
            zeros = int((~touched).sum())
            if raw <= 2.5 * m and zeros > 0:
                estimates.append(m * math.log(m / zeros))
            else:
                estimates.append(raw)
        return float(np.mean(estimates))

    def merge(self, other: Sketch) -> None:
        self._check_mergeable(other)
        assert isinstance(other, HyperLogLog)
        if (other.num_registers, other.depth) != (
            self.num_registers,
            self.depth,
        ):
            raise MergeError("HLL configurations differ")
        self.counters += other.counters

    def to_matrix(self) -> np.ndarray:
        return self.counters.reshape(
            self.depth, self.num_registers * _FM_REGISTER_BITS
        ).copy()

    def load_matrix(self, matrix: np.ndarray) -> None:
        expected = (self.depth, self.num_registers * _FM_REGISTER_BITS)
        if matrix.shape != expected:
            raise ConfigError(f"matrix shape {matrix.shape} != {expected}")
        self.counters = (
            matrix.reshape(
                self.depth, self.num_registers, _FM_REGISTER_BITS
            )
            .astype(np.float64)
            .copy()
        )

    def matrix_positions(
        self, flow: FlowKey
    ) -> list[tuple[int, int, float]]:
        key64 = flow.key64
        positions = []
        for row in range(self.depth):
            register = self._register_hashes.bucket(
                row, key64, self.num_registers
            )
            rank = min(
                _trailing_zeros(self._rank_hashes.hash_value(row, key64)),
                _FM_REGISTER_BITS - 1,
            )
            positions.append(
                (row, register * _FM_REGISTER_BITS + rank, 1.0)
            )
        return positions

    def memory_bytes(self) -> int:
        return (
            self.depth
            * self.num_registers
            * _FM_REGISTER_BITS
            * _COUNTER_BYTES
        )

    def cost_profile(self) -> CostProfile:
        return CostProfile(
            hashes=2 * self.depth, counter_updates=self.depth
        )

    def clone_empty(self) -> "HyperLogLog":
        return HyperLogLog(self.num_registers, self.depth, self.seed)


class LinearCounting(Sketch):
    """Linear counting [55] in volume form.

    Each flow touches one counter per row; the estimate per row is
    ``-m * ln(zero fraction)``, averaged across rows.  Paper config:
    4 rows x 10,000 counters.
    """

    name = "lc"
    low_rank = False
    key64_updates = True

    def __init__(self, width: int = 10_000, depth: int = 4, seed: int = 1):
        super().__init__(seed)
        if width < 1 or depth < 1:
            raise ConfigError("width and depth must be >= 1")
        self.width = width
        self.depth = depth
        self._hashes = HashFamily(depth, seed)
        self.counters = np.zeros((depth, width), dtype=np.float64)

    def update(self, flow: FlowKey, value: int) -> None:
        self.update_key64(flow.key64, value)

    def update_key64(self, key64: int, value: int) -> None:
        for row, col in enumerate(self._hashes.buckets(key64, self.width)):
            self.counters[row, col] += value

    def update_batch(self, keys64, values) -> None:
        """Vectorized update over a key64 column (bit-identical)."""
        cols = self._hashes.buckets_array(keys64, self.width)
        values = np.asarray(values, dtype=np.float64)
        for row in range(self.depth):
            np.add.at(self.counters[row], cols[row], values)

    def estimate(self) -> float:
        estimates = []
        for row in range(self.depth):
            zeros = int((self.counters[row] == 0).sum())
            if zeros == 0:
                estimates.append(self.width * math.log(self.width))
            else:
                estimates.append(self.width * math.log(self.width / zeros))
        return float(np.mean(estimates))

    def merge(self, other: Sketch) -> None:
        self._check_mergeable(other)
        assert isinstance(other, LinearCounting)
        if (other.width, other.depth) != (self.width, self.depth):
            raise MergeError("Linear Counting configurations differ")
        self.counters += other.counters

    def to_matrix(self) -> np.ndarray:
        return self.counters.copy()

    def load_matrix(self, matrix: np.ndarray) -> None:
        if matrix.shape != self.counters.shape:
            raise ConfigError(
                f"matrix shape {matrix.shape} != {self.counters.shape}"
            )
        self.counters = matrix.astype(np.float64).copy()

    def matrix_positions(
        self, flow: FlowKey
    ) -> list[tuple[int, int, float]]:
        key64 = flow.key64
        return [
            (row, col, 1.0)
            for row, col in enumerate(
                self._hashes.buckets(key64, self.width)
            )
        ]

    def memory_bytes(self) -> int:
        return self.depth * self.width * _COUNTER_BYTES

    def cost_profile(self) -> CostProfile:
        return CostProfile(hashes=self.depth, counter_updates=self.depth)

    def clone_empty(self) -> "LinearCounting":
        return LinearCounting(self.width, self.depth, self.seed)
