"""Bloom filter and counting Bloom filter substrates.

FlowRadar keeps a Bloom filter in front of its counting table to decide
whether a packet starts a new flow; the counting variant backs the
volume-form conversion of connectivity sketches (§4.2 cites Counting
Bloom Filters [4, 34] for the bits→counters trick).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError, MergeError
from repro.common.hashing import HashFamily


class BloomFilter:
    """A classic Bloom filter over 64-bit keys.

    Parameters
    ----------
    num_bits:
        Filter length (paper's FlowRadar config: 100,000).
    num_hashes:
        Hash functions (paper: 4).
    """

    def __init__(self, num_bits: int, num_hashes: int = 4, seed: int = 1):
        if num_bits < 1 or num_hashes < 1:
            raise ConfigError("num_bits and num_hashes must be >= 1")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.seed = seed
        self._hashes = HashFamily(num_hashes, seed)
        self.bits = np.zeros(num_bits, dtype=bool)

    def add(self, key64: int) -> bool:
        """Insert; returns True when the key was (probably) already present."""
        positions = self._hashes.buckets(key64, self.num_bits)
        present = all(self.bits[pos] for pos in positions)
        if not present:
            for pos in positions:
                self.bits[pos] = True
        return present

    def add_batch(self, keys64) -> None:
        """Vectorized insert of a uint64 key column.

        Bit-setting is idempotent and order-insensitive, so the result
        equals per-key :meth:`add` calls; membership answers are not
        returned (batch callers test separately if they need them).
        """
        positions = self._hashes.buckets_array(keys64, self.num_bits)
        self.bits[positions.reshape(-1)] = True

    def __contains__(self, key64: int) -> bool:
        return all(
            self.bits[pos]
            for pos in self._hashes.buckets(key64, self.num_bits)
        )

    @property
    def fill_ratio(self) -> float:
        return float(self.bits.mean())

    def false_positive_rate(self) -> float:
        """Current theoretical false-positive probability."""
        return self.fill_ratio**self.num_hashes

    def merge(self, other: "BloomFilter") -> None:
        if (other.num_bits, other.num_hashes, other.seed) != (
            self.num_bits,
            self.num_hashes,
            self.seed,
        ):
            raise MergeError("Bloom filter configurations differ")
        self.bits |= other.bits

    def memory_bytes(self) -> int:
        return (self.num_bits + 7) // 8

    def reset(self) -> None:
        self.bits[:] = False


class CountingBloomFilter:
    """Bloom filter with counters, supporting deletion and volume form.

    Counters are floats so the volume-form conversion of §4.2 (update by
    byte counts instead of setting bits) reuses the same structure.
    """

    def __init__(self, num_counters: int, num_hashes: int = 4, seed: int = 1):
        if num_counters < 1 or num_hashes < 1:
            raise ConfigError("num_counters and num_hashes must be >= 1")
        self.num_counters = num_counters
        self.num_hashes = num_hashes
        self.seed = seed
        self._hashes = HashFamily(num_hashes, seed)
        self.counters = np.zeros(num_counters, dtype=np.float64)

    def add(self, key64: int, value: float = 1.0) -> None:
        for pos in self._hashes.buckets(key64, self.num_counters):
            self.counters[pos] += value

    def add_batch(self, keys64, values=None) -> None:
        """Vectorized volume-form insert: add ``values`` per key.

        ``values=None`` adds 1.0 per key (plain membership counting).
        Bit-identical to per-key :meth:`add` calls: ``np.add.at``
        accumulates in array order.
        """
        positions = self._hashes.buckets_array(keys64, self.num_counters)
        if values is None:
            values = np.ones(positions.shape[1], dtype=np.float64)
        else:
            values = np.asarray(values, dtype=np.float64)
        for row in range(self.num_hashes):
            np.add.at(self.counters, positions[row], values)

    def remove(self, key64: int, value: float = 1.0) -> None:
        for pos in self._hashes.buckets(key64, self.num_counters):
            self.counters[pos] -= value

    def __contains__(self, key64: int) -> bool:
        return all(
            self.counters[pos] > 0
            for pos in self._hashes.buckets(key64, self.num_counters)
        )

    def merge(self, other: "CountingBloomFilter") -> None:
        if (other.num_counters, other.num_hashes, other.seed) != (
            self.num_counters,
            self.num_hashes,
            self.seed,
        ):
            raise MergeError("counting Bloom filter configurations differ")
        self.counters += other.counters

    def memory_bytes(self) -> int:
        return self.num_counters * 8

    def reset(self) -> None:
        self.counters[:] = 0.0
