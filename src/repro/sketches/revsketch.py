"""Reversible Sketch [46]: modular hashing + reverse hashing.

The key is partitioned into ``q`` words; each word is hashed by a small
per-row, per-word *modular* hash into a sub-index, and the bucket index
is the concatenation of the sub-indices.  Because the bucket index
factors per word, heavy buckets can be *reversed*: enumerate candidate
values word by word, keeping only partial keys whose sub-index prefix
matches a heavy bucket in every row.

Configurations
--------------
* 32-bit keys (IPs, or 32-bit flow fingerprints): 4 words x 8 bits with
  3-bit sub-indices -> 4096 buckets/row.  This is the paper's DDoS
  configuration and the original RevSketch evaluation setting.
* The paper's 5-tuple runs partition the 104-bit header into 16-bit
  words.  Exhaustive reversal of that configuration is combinatorial,
  so — as documented in DESIGN.md — flow-level tasks apply the sketch
  to a 32-bit fingerprint of the 5-tuple (collision probability 2^-32)
  and report flows by fingerprint, which ground truth mirrors.

The paper measures >95% of RevSketch CPU cycles in hash computations
(q word hashes per row plus key mangling); the cost profile reflects
that.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError, MergeError
from repro.common.flow import FlowKey
from repro.common.hashing import mix64, mix64_array
from repro.sketches.base import CostProfile, Sketch

_COUNTER_BYTES = 8


def flow_fingerprint(flow: FlowKey) -> int:
    """32-bit fingerprint of a 5-tuple (for reversible flow tracking)."""
    return flow.key64 & 0xFFFFFFFF


class ReversibleSketch(Sketch):
    """Reversible Sketch over fixed-width integer keys.

    Parameters
    ----------
    word_bits:
        Bits per key word (key width = ``num_words * word_bits``).
    num_words:
        Number of words ``q`` the key is partitioned into.
    subindex_bits:
        Bits of bucket index contributed per word; the per-row bucket
        count is ``2 ** (num_words * subindex_bits)``.
    depth:
        Number of rows.
    beam_limit:
        Cap on partial candidates kept during reversal; decode raises
        :class:`ConfigError` if exceeded (ambiguous configuration).
    """

    name = "revsketch"
    low_rank = True  # Figure 5: ~50% of singular values for <10% error

    def __init__(
        self,
        word_bits: int = 8,
        num_words: int = 4,
        subindex_bits: int = 3,
        depth: int = 4,
        seed: int = 1,
        beam_limit: int = 200_000,
    ):
        super().__init__(seed)
        if word_bits < 1 or num_words < 1 or depth < 1:
            raise ConfigError("word_bits, num_words, depth must be >= 1")
        if subindex_bits < 1 or subindex_bits > word_bits:
            raise ConfigError("subindex_bits must be in [1, word_bits]")
        self.word_bits = word_bits
        self.num_words = num_words
        self.subindex_bits = subindex_bits
        self.depth = depth
        self.beam_limit = beam_limit
        self.key_bits = word_bits * num_words
        self.width = 1 << (num_words * subindex_bits)
        self.counters = np.zeros((depth, self.width), dtype=np.float64)
        # Per (row, word) hash seed for the modular hashes.
        self._word_seeds = [
            [
                mix64((seed * 0x9E37 + row) ^ ((word + 1) * 0xC0FFEE))
                for word in range(num_words)
            ]
            for row in range(depth)
        ]
        self._preimages: list[list[list[np.ndarray]]] | None = None

    # ------------------------------------------------------------------
    # Key plumbing
    # ------------------------------------------------------------------
    def _split_words(self, key: int) -> list[int]:
        mask = (1 << self.word_bits) - 1
        return [
            (key >> (self.word_bits * w)) & mask
            for w in range(self.num_words)
        ]

    def _join_words(self, words: tuple[int, ...]) -> int:
        key = 0
        for w, value in enumerate(words):
            key |= value << (self.word_bits * w)
        return key

    def _subindex(self, row: int, word: int, value: int) -> int:
        sub_mask = (1 << self.subindex_bits) - 1
        return mix64(value ^ self._word_seeds[row][word]) & sub_mask

    def _bucket(self, row: int, words: list[int]) -> int:
        index = 0
        for word, value in enumerate(words):
            index = (index << self.subindex_bits) | self._subindex(
                row, word, value
            )
        return index

    # ------------------------------------------------------------------
    # Recording / querying
    # ------------------------------------------------------------------
    def update(self, flow: FlowKey, value: int) -> None:
        self.update_key(flow_fingerprint(flow), value)

    def update_key(self, key: int, value: int) -> None:
        """Record ``value`` for an integer key of ``key_bits`` width."""
        words = self._split_words(key)
        for row in range(self.depth):
            self.counters[row, self._bucket(row, words)] += value

    def estimate_key(self, key: int) -> float:
        words = self._split_words(key)
        return min(
            self.counters[row, self._bucket(row, words)]
            for row in range(self.depth)
        )

    def estimate(self, flow: FlowKey) -> float:
        return self.estimate_key(flow_fingerprint(flow))

    # ------------------------------------------------------------------
    # Reverse hashing
    # ------------------------------------------------------------------
    def _build_preimages(self) -> list[list[list[np.ndarray]]]:
        """preimages[row][word][subindex] -> array of word values."""
        if self._preimages is not None:
            return self._preimages
        word_space = np.arange(1 << self.word_bits, dtype=np.uint64)
        sub_mask = np.uint64((1 << self.subindex_bits) - 1)
        preimages: list[list[list[np.ndarray]]] = []
        for row in range(self.depth):
            row_tables: list[list[np.ndarray]] = []
            for word in range(self.num_words):
                hashed = (
                    mix64_array(word_space, self._word_seeds[row][word])
                    & sub_mask
                )
                table = [
                    word_space[hashed == np.uint64(sub)].astype(np.int64)
                    for sub in range(1 << self.subindex_bits)
                ]
                row_tables.append(table)
            preimages.append(row_tables)
        self._preimages = preimages
        return preimages

    def decode(self, threshold: float) -> dict[int, float]:
        """Recover keys whose row-minimum counter exceeds ``threshold``.

        Returns ``{key: estimate}``.  Candidates are grown word by word
        from the heavy buckets of row 0 and pruned at every step against
        the heavy-bucket prefixes of all rows.
        """
        preimages = self._build_preimages()
        heavy: list[set[int]] = [
            set(np.nonzero(self.counters[row] > threshold)[0].tolist())
            for row in range(self.depth)
        ]
        if not all(heavy):
            # A key above threshold must be heavy in all rows; if any
            # row has no heavy bucket there is nothing to decode.
            return {}
        # prefix_sets[row][word] = heavy-bucket prefixes after `word+1`
        # words (each prefix is the top (word+1)*subindex_bits bits).
        prefix_sets: list[list[set[int]]] = []
        total_words = self.num_words
        for row in range(self.depth):
            row_prefixes = []
            for word in range(total_words):
                shift = (total_words - word - 1) * self.subindex_bits
                row_prefixes.append({b >> shift for b in heavy[row]})
            prefix_sets.append(row_prefixes)

        # Partial candidates: (words_so_far, per-row prefix values).
        partials: list[tuple[tuple[int, ...], tuple[int, ...]]] = [
            ((), (0,) * self.depth)
        ]
        for word in range(total_words):
            extended: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
            # Candidate word values must map into a heavy prefix in
            # every row; enumerate from row 0's preimages.
            for words_so_far, prefixes in partials:
                allowed_subs_row0 = {
                    prefix & ((1 << self.subindex_bits) - 1)
                    for prefix in prefix_sets[0][word]
                    if prefix >> self.subindex_bits == prefixes[0]
                }
                for sub0 in allowed_subs_row0:
                    for value in preimages[0][word][sub0]:
                        value = int(value)
                        new_prefixes = []
                        valid = True
                        for row in range(self.depth):
                            sub = self._subindex(row, word, value)
                            new_prefix = (
                                prefixes[row] << self.subindex_bits
                            ) | sub
                            if new_prefix not in prefix_sets[row][word]:
                                valid = False
                                break
                            new_prefixes.append(new_prefix)
                        if valid:
                            extended.append(
                                (
                                    words_so_far + (value,),
                                    tuple(new_prefixes),
                                )
                            )
            if len(extended) > self.beam_limit:
                raise ConfigError(
                    "reverse hashing exceeded beam limit "
                    f"({len(extended)} partial candidates at word {word}); "
                    "use fewer/larger sub-indices or raise beam_limit"
                )
            partials = extended
            if not partials:
                return {}

        results: dict[int, float] = {}
        for words_so_far, _prefixes in partials:
            key = self._join_words(words_so_far)
            estimate = self.estimate_key(key)
            if estimate > threshold:
                results[key] = estimate
        return results

    # ------------------------------------------------------------------
    def merge(self, other: Sketch) -> None:
        self._check_mergeable(other)
        assert isinstance(other, ReversibleSketch)
        if (
            other.word_bits,
            other.num_words,
            other.subindex_bits,
            other.depth,
        ) != (
            self.word_bits,
            self.num_words,
            self.subindex_bits,
            self.depth,
        ):
            raise MergeError("Reversible Sketch configurations differ")
        self.counters += other.counters

    def to_matrix(self) -> np.ndarray:
        return self.counters.copy()

    def load_matrix(self, matrix: np.ndarray) -> None:
        if matrix.shape != self.counters.shape:
            raise ConfigError(
                f"matrix shape {matrix.shape} != {self.counters.shape}"
            )
        self.counters = matrix.astype(np.float64).copy()

    def matrix_positions(
        self, flow: FlowKey
    ) -> list[tuple[int, int, float]]:
        words = self._split_words(flow_fingerprint(flow))
        return [
            (row, self._bucket(row, words), 1.0)
            for row in range(self.depth)
        ]

    def memory_bytes(self) -> int:
        return self.depth * self.width * _COUNTER_BYTES

    def cost_profile(self) -> CostProfile:
        # q modular hashes per row, plus key mangling (~2 mixing passes
        # over the header) — hash computations dominate (>95%, §2.2).
        return CostProfile(
            hashes=self.depth * self.num_words + 2,
            counter_updates=self.depth,
        )

    def clone_empty(self) -> "ReversibleSketch":
        return ReversibleSketch(
            word_bits=self.word_bits,
            num_words=self.num_words,
            subindex_bits=self.subindex_bits,
            depth=self.depth,
            seed=self.seed,
            beam_limit=self.beam_limit,
        )
