"""Sketch-based measurement solutions (Table 1 of the paper).

Every solution the paper evaluates in its normal path is implemented
here, from scratch:

* :class:`~repro.sketches.countmin.CountMinSketch` — Count-Min [14]
* :class:`~repro.sketches.countsketch.CountSketch` — CountSketch [8]
* :class:`~repro.sketches.bloom.BloomFilter` — Bloom filter substrate
* :class:`~repro.sketches.deltoid.Deltoid` — Deltoid [13]
* :class:`~repro.sketches.revsketch.ReversibleSketch` — Reversible Sketch [46]
* :class:`~repro.sketches.flowradar.FlowRadar` — FlowRadar [28]
* :class:`~repro.sketches.univmon.UnivMon` — UnivMon [30]
* :class:`~repro.sketches.twolevel.TwoLevelSketch` — TwoLevel [56]
* :class:`~repro.sketches.cardinality` — FM [20], kMin [2], Linear Counting [55]
* :class:`~repro.sketches.mrac.MRAC` — MRAC [26]

All sketches share the :class:`~repro.sketches.base.Sketch` interface:
``update`` to record traffic, ``merge`` for network-wide aggregation,
``to_matrix``/``load_matrix`` for compressive-sensing recovery, and
``cost_profile`` for the CPU cost model.
"""

from repro.sketches.base import CostProfile, Sketch
from repro.sketches.bloom import BloomFilter, CountingBloomFilter
from repro.sketches.cardinality import (
    FMSketch,
    HyperLogLog,
    KMinSketch,
    LinearCounting,
)
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.deltoid import Deltoid
from repro.sketches.flowradar import FlowRadar
from repro.sketches.mrac import MRAC
from repro.sketches.revsketch import ReversibleSketch
from repro.sketches.twolevel import TwoLevelSketch
from repro.sketches.univmon import UnivMon

__all__ = [
    "BloomFilter",
    "CostProfile",
    "CountMinSketch",
    "CountSketch",
    "CountingBloomFilter",
    "Deltoid",
    "FMSketch",
    "FlowRadar",
    "HyperLogLog",
    "KMinSketch",
    "LinearCounting",
    "MRAC",
    "ReversibleSketch",
    "Sketch",
    "TwoLevelSketch",
    "UnivMon",
]
