"""Common sketch interface and CPU cost profiles.

The paper's central observation (§2.2) is that sketches are *primitives*:
what makes them expensive in software is the per-packet work — hash
computations, counter updates, heap maintenance — required to keep them
reversible and queryable.  Every sketch here therefore exposes, besides
its measurement interface, a :class:`CostProfile` describing the abstract
per-packet operation counts of its §7.1 configuration.  The data-plane
cost model (:mod:`repro.dataplane.cost_model`) weighs those operations to
reproduce the paper's measured cycles-per-packet (Figures 2a and 15).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.common.errors import MergeError
from repro.common.flow import FlowKey


@dataclass(frozen=True)
class CostProfile:
    """Abstract per-packet operation counts for one sketch configuration.

    Attributes
    ----------
    hashes:
        Hash computations per packet (incl. header randomization the
        paper mentions for FlowRadar/RevSketch collision resolution).
    counter_updates:
        Counter read-modify-writes per packet.  Deltoid's header-bit
        counters make this its dominant term (86% of cycles, §2.2).
    heap_ops:
        Heap/priority-structure operations per packet (UnivMon spends
        47% of its cycles here, §2.2).
    memory_words:
        Extra word-sized memory touches (buffer copies, key writes).
    """

    hashes: float = 0.0
    counter_updates: float = 0.0
    heap_ops: float = 0.0
    memory_words: float = 0.0

    def scaled(self, factor: float) -> "CostProfile":
        return CostProfile(
            hashes=self.hashes * factor,
            counter_updates=self.counter_updates * factor,
            heap_ops=self.heap_ops * factor,
            memory_words=self.memory_words * factor,
        )

    def __add__(self, other: "CostProfile") -> "CostProfile":
        return CostProfile(
            hashes=self.hashes + other.hashes,
            counter_updates=self.counter_updates + other.counter_updates,
            heap_ops=self.heap_ops + other.heap_ops,
            memory_words=self.memory_words + other.memory_words,
        )


class Sketch(ABC):
    """Base class for every sketch-based measurement solution.

    Subclasses must keep all hash decisions derived from ``seed`` so
    that two sketches constructed with equal parameters are *mergeable*
    (counter-wise addition) and so the control plane can recompute which
    counters a known flow touched during recovery.
    """

    #: Short identifier used in reports and benchmark tables.
    name: str = "sketch"

    #: Whether the sketch matrix has exploitable low-rank structure
    #: (§5.3: Count-Min-like sketches with few rows do not; for those
    #: the recovery drops the nuclear-norm term).
    low_rank: bool = True

    #: True when :meth:`update` depends on the flow only through its
    #: 64-bit fold (``flow.key64``).  That is the contract that makes
    #: :meth:`update_batch` over a trace's ``key64`` column exactly
    #: equivalent to per-packet ``update`` calls; sketches that consume
    #: the full header (RevSketch, Deltoid, FlowRadar) or keep
    #: order-dependent side state (UnivMon's trackers) leave it False
    #: and the batched switch falls back to the scalar path for them.
    key64_updates: bool = False

    def __init__(self, seed: int = 1):
        self.seed = seed

    def describe(self) -> str:
        """One-line configuration summary for logs and telemetry labels.

        Subclasses get a useful default — class name, registry name,
        seed, and configured memory — without overriding anything.
        """
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"seed={self.seed}, memory={self.memory_bytes()}B)"
        )

    def __repr__(self) -> str:
        return self.describe()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @abstractmethod
    def update(self, flow: FlowKey, value: int) -> None:
        """Record ``value`` bytes for ``flow``."""

    def update_batch(self, keys64, values) -> None:
        """Record many ``(key64, value)`` pairs in one call.

        ``keys64`` is a uint64 array (a :class:`~repro.traffic.trace.Trace`
        ``key64`` column or a slice of one) and ``values`` the matching
        byte counts.  Only valid when :attr:`key64_updates` is True.

        This generic implementation is the scalar fallback — a loop over
        ``update_key64`` — so every key64-pure sketch gets a correct
        batch path for free; the hot sketches override it with true
        NumPy kernels (``np.add.at`` / ``np.bincount``) that are
        bit-identical to the scalar loop because counter state is
        order-insensitive and all values are exact in float64.
        """
        if not self.key64_updates:
            raise NotImplementedError(
                f"{type(self).__name__} updates depend on more than "
                "key64; use per-packet update()"
            )
        update = self.update_key64  # type: ignore[attr-defined]
        for key, value in zip(
            np.asarray(keys64, dtype=np.uint64).tolist(),
            np.asarray(values).tolist(),
        ):
            update(key, value)

    def inject(self, flow: FlowKey, value: int) -> None:
        """Re-inject a recovered flow (control-plane recovery, §5).

        Defaults to :meth:`update` — recovery replays the flow as if it
        had been recorded by the normal path.  Sketches whose update
        semantics are per-packet rather than per-byte (MRAC) override
        this to convert the recovered byte volume appropriately.
        """
        self.update(flow, value)

    # ------------------------------------------------------------------
    # Aggregation / recovery interface
    # ------------------------------------------------------------------
    @abstractmethod
    def merge(self, other: "Sketch") -> None:
        """Counter-wise add ``other`` into this sketch (same config)."""

    @abstractmethod
    def to_matrix(self) -> np.ndarray:
        """Flatten all volume counters into a 2-D float matrix.

        The layout is sketch-specific but stable: ``load_matrix``
        inverts it, and :meth:`matrix_positions` indexes into it.
        """

    @abstractmethod
    def load_matrix(self, matrix: np.ndarray) -> None:
        """Replace volume counters from a matrix produced by to_matrix."""

    def matrix_positions(
        self, flow: FlowKey
    ) -> list[tuple[int, int, float]]:
        """Positions ``(row, col, coefficient)`` a unit of ``flow`` adds.

        This is the sketch's linear operator restricted to one flow: the
        compressive-sensing recovery (§5) uses it to express
        ``sk(x)`` for the flows tracked in the fast path's hash table.
        Sketches with non-linear parts (FlowRadar's XOR fields) expose
        only their *volume* counters here and additionally support exact
        flow injection via :meth:`update`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose a linear operator"
        )

    @abstractmethod
    def memory_bytes(self) -> int:
        """Configured memory footprint in bytes."""

    @abstractmethod
    def cost_profile(self) -> CostProfile:
        """Abstract per-packet operation counts for this configuration."""

    @abstractmethod
    def clone_empty(self) -> "Sketch":
        """A zeroed sketch with identical configuration and seeds."""

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check_mergeable(self, other: "Sketch") -> None:
        if type(other) is not type(self):
            raise MergeError(
                f"cannot merge {type(other).__name__} into "
                f"{type(self).__name__}"
            )
        if other.seed != self.seed:
            raise MergeError("cannot merge sketches with different seeds")

    def reset(self) -> None:
        """Zero all counters in place (default: via load_matrix)."""
        self.load_matrix(np.zeros_like(self.to_matrix()))
