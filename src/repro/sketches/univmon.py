"""UnivMon [30]: universal sketching — one sketch, many statistics.

A hierarchy of ``L`` levels; level ``i`` monitors the substream of flows
whose sampling hash has at least ``i`` trailing zero bits (each level
halves the substream).  Every level runs a CountSketch plus a top-k
tracker.  Any function ``G = sum_f g(v_f)`` is then estimated by the
recursive universal estimator:

    Y_{L-1} = sum_{f in heap_{L-1}} g(v_f)
    Y_i     = 2 * Y_{i+1} + sum_{f in heap_i} (1 - 2*s_{i+1}(f)) * g(v_f)

where ``s_{i+1}(f)`` indicates membership of ``f`` in level ``i+1``.
Heavy hitters come from the level-0 tracker; entropy uses
``g(v) = v * log2(v)``; cardinality uses ``g(v) = 1``.

The paper's configuration: counter widths 4000 / 2000 / 1000 / 500 /
500... and a 500-flow heap per level; UnivMon spends 53% of its cycles
hashing and 47% maintaining heaps (§2.2; 4,382 cycles/packet).
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.errors import ConfigError, MergeError
from repro.common.flow import FlowKey
from repro.common.hashing import mix64
from repro.sketches.base import CostProfile, Sketch
from repro.sketches.countsketch import CountSketch

PAPER_LEVEL_WIDTHS = (4000, 2000, 1000, 500, 500, 500, 500, 500)


def _trailing_zeros(value: int) -> int:
    if value == 0:
        return 64
    return (value & -value).bit_length() - 1


class UnivMon(Sketch):
    """UnivMon over 5-tuple flows.

    Parameters
    ----------
    level_widths:
        CountSketch width per level; the number of levels is its length.
    depth:
        CountSketch rows per level.
    heap_size:
        Top-k tracker capacity per level (paper: 500).
    """

    name = "univmon"
    low_rank = False

    def __init__(
        self,
        level_widths: tuple[int, ...] = PAPER_LEVEL_WIDTHS,
        depth: int = 5,
        heap_size: int = 500,
        seed: int = 1,
    ):
        super().__init__(seed)
        if not level_widths:
            raise ConfigError("need at least one level")
        if heap_size < 1:
            raise ConfigError("heap_size must be >= 1")
        self.level_widths = tuple(level_widths)
        self.num_levels = len(level_widths)
        self.depth = depth
        self.heap_size = heap_size
        self._sample_seed = mix64(seed ^ 0x0451_0451)
        self.sketches = [
            CountSketch(width, depth, seed=mix64(seed + 31 * (i + 1)))
            for i, width in enumerate(level_widths)
        ]
        # Per-level top-k tracker: {key64: (FlowKey, estimate)}.
        self.trackers: list[dict[int, tuple[FlowKey, float]]] = [
            {} for _ in range(self.num_levels)
        ]

    # ------------------------------------------------------------------
    def flow_level(self, key64: int) -> int:
        """Deepest level this flow participates in (0-based)."""
        ntz = _trailing_zeros(mix64(key64 ^ self._sample_seed))
        return min(ntz, self.num_levels - 1)

    def update(self, flow: FlowKey, value: int) -> None:
        key64 = flow.key64
        deepest = self.flow_level(key64)
        for level in range(deepest + 1):
            sketch = self.sketches[level]
            sketch.update_key64(key64, value)
            tracker = self.trackers[level]
            if key64 in tracker or len(tracker) < 2 * self.heap_size:
                estimate = sketch.estimate_key64(key64)
                tracker[key64] = (flow, max(estimate, 0.0))
            else:
                estimate = sketch.estimate_key64(key64)
                self._prune_tracker(level)
                tracker = self.trackers[level]
                if len(tracker) < 2 * self.heap_size:
                    tracker[key64] = (flow, max(estimate, 0.0))

    def _prune_tracker(self, level: int) -> None:
        """Drop the smallest tracked flows, keeping ``heap_size`` of them."""
        tracker = self.trackers[level]
        if len(tracker) <= self.heap_size:
            return
        kept = sorted(
            tracker.items(), key=lambda item: item[1][1], reverse=True
        )[: self.heap_size]
        self.trackers[level] = dict(kept)

    def _top_flows(self, level: int) -> list[tuple[FlowKey, int, float]]:
        """Top flows of a level with refreshed CountSketch estimates."""
        sketch = self.sketches[level]
        refreshed = [
            (flow, key64, max(sketch.estimate_key64(key64), 0.0))
            for key64, (flow, _stale) in self.trackers[level].items()
        ]
        refreshed.sort(key=lambda item: item[2], reverse=True)
        return refreshed[: self.heap_size]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def heavy_hitters(self, threshold: float) -> dict[FlowKey, float]:
        """Flows in the level-0 tracker whose estimate exceeds threshold."""
        return {
            flow: estimate
            for flow, _key64, estimate in self._top_flows(0)
            if estimate > threshold
        }

    def g_sum(self, g) -> float:
        """Universal estimator for ``G = sum_f g(v_f)`` (g(0) must be 0)."""
        estimate = 0.0
        for level in reversed(range(self.num_levels)):
            contribution = 0.0
            for _flow, key64, value in self._top_flows(level):
                if value <= 0:
                    continue
                if level == self.num_levels - 1:
                    contribution += g(value)
                else:
                    in_next = self.flow_level(key64) > level
                    contribution += (1 - 2 * int(in_next)) * g(value)
            if level == self.num_levels - 1:
                estimate = contribution
            else:
                estimate = 2 * estimate + contribution
        return max(estimate, 0.0)

    def entropy(self, total_bytes: float) -> float:
        """Shannon entropy (bits) of the flow size distribution."""
        if total_bytes <= 0:
            return 0.0
        g_v_log_v = self.g_sum(
            lambda value: value * math.log2(value) if value > 1 else 0.0
        )
        return max(math.log2(total_bytes) - g_v_log_v / total_bytes, 0.0)

    def cardinality(self) -> float:
        """Distinct-flow estimate via ``g(v) = 1``."""
        return self.g_sum(lambda value: 1.0)

    def moment(self, p: float) -> float:
        """``p``-th frequency moment ``F_p = sum_f v_f^p``.

        ``p = 0`` is cardinality, ``p = 1`` total volume, ``p = 2`` the
        repeat-rate/self-join size — the universal-sketching promise of
        one structure answering the whole moment family.
        """
        if p < 0:
            raise ConfigError("moment order must be >= 0")
        return self.g_sum(lambda value: float(value) ** p)

    # ------------------------------------------------------------------
    def merge(self, other: Sketch) -> None:
        self._check_mergeable(other)
        assert isinstance(other, UnivMon)
        if (
            other.level_widths != self.level_widths
            or other.depth != self.depth
        ):
            raise MergeError("UnivMon configurations differ")
        for mine, theirs in zip(self.sketches, other.sketches):
            mine.merge(theirs)
        for level in range(self.num_levels):
            merged = dict(self.trackers[level])
            for key64, (flow, _est) in other.trackers[level].items():
                merged.setdefault(key64, (flow, 0.0))
            sketch = self.sketches[level]
            self.trackers[level] = {
                key64: (flow, max(sketch.estimate_key64(key64), 0.0))
                for key64, (flow, _est) in merged.items()
            }
        # The merged sketch lives in the control plane, which has no
        # per-host memory constraint: keep the tracker union (this is
        # what makes Figure 12's recall improve with deployment size —
        # each host contributes the heavy keys of its own shard).
        self.heap_size = max(
            self.heap_size,
            max((len(t) for t in self.trackers), default=self.heap_size),
        )

    def to_matrix(self) -> np.ndarray:
        return np.hstack([s.counters for s in self.sketches])

    def load_matrix(self, matrix: np.ndarray) -> None:
        expected = (self.depth, sum(self.level_widths))
        if matrix.shape != expected:
            raise ConfigError(f"matrix shape {matrix.shape} != {expected}")
        offset = 0
        for sketch in self.sketches:
            sketch.counters = (
                matrix[:, offset : offset + sketch.width]
                .astype(np.float64)
                .copy()
            )
            offset += sketch.width

    def matrix_positions(
        self, flow: FlowKey
    ) -> list[tuple[int, int, float]]:
        key64 = flow.key64
        deepest = self.flow_level(key64)
        positions: list[tuple[int, int, float]] = []
        offset = 0
        for level, sketch in enumerate(self.sketches):
            if level <= deepest:
                for row, col, coef in sketch.matrix_positions(flow):
                    positions.append((row, offset + col, coef))
            offset += sketch.width
        return positions

    def memory_bytes(self) -> int:
        sketch_bytes = sum(s.memory_bytes() for s in self.sketches)
        # 13-byte key + 8-byte estimate per heap slot.
        heap_bytes = self.num_levels * self.heap_size * (13 + 8)
        return sketch_bytes + heap_bytes

    def cost_profile(self) -> CostProfile:
        # A flow participates in ~2 levels on average (geometric);
        # each level costs a CountSketch update + an estimate refresh
        # (2*depth hashes each) and tracker maintenance.
        avg_levels = 2.0
        return CostProfile(
            hashes=1 + avg_levels * 4 * self.depth,
            counter_updates=avg_levels * self.depth,
            heap_ops=avg_levels * 2,
        )

    def clone_empty(self) -> "UnivMon":
        return UnivMon(
            level_widths=self.level_widths,
            depth=self.depth,
            heap_size=self.heap_size,
            seed=self.seed,
        )

    def reset(self) -> None:
        for sketch in self.sketches:
            sketch.counters[:] = 0.0
        self.trackers = [{} for _ in range(self.num_levels)]
