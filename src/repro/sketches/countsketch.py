"""CountSketch [8] — the unbiased building block inside UnivMon.

Like Count-Min but each update is multiplied by a ±1 sign hash, and a
point query takes the *median* across rows, giving an unbiased estimator
with error proportional to the L2 norm of the stream.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError, MergeError
from repro.common.flow import FlowKey
from repro.common.hashing import HashFamily
from repro.sketches.base import CostProfile, Sketch

_COUNTER_BYTES = 8


class CountSketch(Sketch):
    """CountSketch over 64-bit folded keys.

    Parameters
    ----------
    width:
        Counters per row.
    depth:
        Rows; odd values give a well-defined median.
    """

    name = "countsketch"
    low_rank = False
    key64_updates = True

    def __init__(self, width: int = 4000, depth: int = 5, seed: int = 1):
        super().__init__(seed)
        if width < 1 or depth < 1:
            raise ConfigError("width and depth must be >= 1")
        self.width = width
        self.depth = depth
        self._hashes = HashFamily(depth, seed)
        self.counters = np.zeros((depth, width), dtype=np.float64)

    def update(self, flow: FlowKey, value: int) -> None:
        self.update_key64(flow.key64, value)

    def update_key64(self, key64: int, value: int) -> None:
        cols = self._hashes.buckets(key64, self.width)
        signs = self._hashes.signs(key64)
        for row in range(self.depth):
            self.counters[row, cols[row]] += signs[row] * value

    def update_batch(self, keys64, values) -> None:
        """Vectorized signed update over a key64 column (bit-identical)."""
        cols = self._hashes.buckets_array(keys64, self.width)
        signs = self._hashes.signs_array(keys64)
        values = np.asarray(values, dtype=np.float64)
        for row in range(self.depth):
            np.add.at(self.counters[row], cols[row], signs[row] * values)

    def estimate(self, flow: FlowKey) -> float:
        return self.estimate_key64(flow.key64)

    def estimate_key64(self, key64: int) -> float:
        cols = self._hashes.buckets(key64, self.width)
        signs = self._hashes.signs(key64)
        values = [
            signs[row] * self.counters[row, cols[row]]
            for row in range(self.depth)
        ]
        return float(np.median(values))

    def l2_estimate(self) -> float:
        """Estimate of the squared L2 norm of the stream (median of rows)."""
        return float(np.median((self.counters**2).sum(axis=1)))

    def merge(self, other: Sketch) -> None:
        self._check_mergeable(other)
        assert isinstance(other, CountSketch)
        if (other.width, other.depth) != (self.width, self.depth):
            raise MergeError("CountSketch shapes differ")
        self.counters += other.counters

    def to_matrix(self) -> np.ndarray:
        return self.counters.copy()

    def load_matrix(self, matrix: np.ndarray) -> None:
        if matrix.shape != self.counters.shape:
            raise ConfigError(
                f"matrix shape {matrix.shape} != {self.counters.shape}"
            )
        self.counters = matrix.astype(np.float64).copy()

    def matrix_positions(
        self, flow: FlowKey
    ) -> list[tuple[int, int, float]]:
        key64 = flow.key64
        cols = self._hashes.buckets(key64, self.width)
        signs = self._hashes.signs(key64)
        return [
            (row, cols[row], float(signs[row])) for row in range(self.depth)
        ]

    def memory_bytes(self) -> int:
        return self.depth * self.width * _COUNTER_BYTES

    def cost_profile(self) -> CostProfile:
        # Bucket hash + sign hash per row.
        return CostProfile(
            hashes=2 * self.depth,
            counter_updates=self.depth,
        )

    def clone_empty(self) -> "CountSketch":
        return CountSketch(self.width, self.depth, self.seed)
