"""Count-Min sketch [14] — the paper's running example (Figure 1).

A ``d x w`` counter array with ``d`` independent hash functions.  Each
packet adds its byte count to one counter per row; a point query returns
the minimum of the flow's ``d`` counters, which overestimates the true
size by at most ``e * V / w`` with probability ``1 - (1/2)^d``.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError, MergeError
from repro.common.flow import FlowKey
from repro.common.hashing import HashFamily
from repro.sketches.base import CostProfile, Sketch

_COUNTER_BYTES = 8


class CountMinSketch(Sketch):
    """Count-Min sketch over 5-tuple flows.

    Parameters
    ----------
    width:
        Counters per row (``w``).
    depth:
        Number of rows / hash functions (``d``).
    seed:
        Hash family seed.
    """

    name = "countmin"
    low_rank = False  # few rows, rank == depth (§5.3, Figure 5)
    key64_updates = True

    def __init__(self, width: int = 4000, depth: int = 4, seed: int = 1):
        super().__init__(seed)
        if width < 1 or depth < 1:
            raise ConfigError("width and depth must be >= 1")
        self.width = width
        self.depth = depth
        self._hashes = HashFamily(depth, seed)
        self.counters = np.zeros((depth, width), dtype=np.float64)

    # ------------------------------------------------------------------
    def update(self, flow: FlowKey, value: int) -> None:
        key64 = flow.key64
        for row, col in enumerate(self._hashes.buckets(key64, self.width)):
            self.counters[row, col] += value

    def update_key64(self, key64: int, value: int) -> None:
        """Update by a pre-folded 64-bit key (host-based statistics)."""
        for row, col in enumerate(self._hashes.buckets(key64, self.width)):
            self.counters[row, col] += value

    def update_batch(self, keys64, values) -> None:
        """Vectorized update over a key64 column.

        ``np.add.at`` applies additions in array order, so per-bucket
        accumulation happens in the same sequence as the scalar loop —
        the counters come out bit-identical.
        """
        cols = self._hashes.buckets_array(keys64, self.width)
        values = np.asarray(values, dtype=np.float64)
        for row in range(self.depth):
            np.add.at(self.counters[row], cols[row], values)

    def estimate(self, flow: FlowKey) -> float:
        """Point query: never underestimates the true byte count."""
        return self.estimate_key64(flow.key64)

    def estimate_key64(self, key64: int) -> float:
        return min(
            self.counters[row, col]
            for row, col in enumerate(
                self._hashes.buckets(key64, self.width)
            )
        )

    # ------------------------------------------------------------------
    def merge(self, other: Sketch) -> None:
        self._check_mergeable(other)
        assert isinstance(other, CountMinSketch)
        if (other.width, other.depth) != (self.width, self.depth):
            raise MergeError("Count-Min shapes differ")
        self.counters += other.counters

    def to_matrix(self) -> np.ndarray:
        return self.counters.copy()

    def load_matrix(self, matrix: np.ndarray) -> None:
        if matrix.shape != self.counters.shape:
            raise ConfigError(
                f"matrix shape {matrix.shape} != {self.counters.shape}"
            )
        self.counters = matrix.astype(np.float64).copy()

    def matrix_positions(
        self, flow: FlowKey
    ) -> list[tuple[int, int, float]]:
        key64 = flow.key64
        return [
            (row, col, 1.0)
            for row, col in enumerate(
                self._hashes.buckets(key64, self.width)
            )
        ]

    def memory_bytes(self) -> int:
        return self.depth * self.width * _COUNTER_BYTES

    def cost_profile(self) -> CostProfile:
        return CostProfile(
            hashes=self.depth,
            counter_updates=self.depth,
        )

    def clone_empty(self) -> "CountMinSketch":
        return CountMinSketch(self.width, self.depth, self.seed)
