"""Trace persistence: compact binary (npz) and CSV interchange.

A downstream user will want to generate a workload once and reuse it
across experiments, or import packets from their own capture tooling.
The npz format stores five integer columns (src, dst, sport, dport,
proto), sizes, and float timestamps; CSV uses one packet per line with
a header row.
"""

from __future__ import annotations

import csv
import pathlib

import numpy as np

from repro.common.errors import ConfigError
from repro.common.flow import FlowKey, Packet
from repro.traffic.trace import Trace

_CSV_FIELDS = (
    "timestamp",
    "src_ip",
    "dst_ip",
    "src_port",
    "dst_port",
    "proto",
    "size",
)


def save_trace(trace: Trace, path: str | pathlib.Path) -> None:
    """Write a trace as a compressed npz archive."""
    n = len(trace)
    src = np.empty(n, dtype=np.uint32)
    dst = np.empty(n, dtype=np.uint32)
    sport = np.empty(n, dtype=np.uint16)
    dport = np.empty(n, dtype=np.uint16)
    proto = np.empty(n, dtype=np.uint8)
    size = np.empty(n, dtype=np.uint16)
    timestamp = np.empty(n, dtype=np.float64)
    for i, packet in enumerate(trace):
        flow = packet.flow
        src[i] = flow.src_ip
        dst[i] = flow.dst_ip
        sport[i] = flow.src_port
        dport[i] = flow.dst_port
        proto[i] = flow.proto
        size[i] = packet.size
        timestamp[i] = packet.timestamp
    np.savez_compressed(
        path,
        src=src,
        dst=dst,
        sport=sport,
        dport=dport,
        proto=proto,
        size=size,
        timestamp=timestamp,
    )


def load_trace(path: str | pathlib.Path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(path) as data:
        required = {
            "src", "dst", "sport", "dport", "proto", "size", "timestamp"
        }
        missing = required - set(data.files)
        if missing:
            raise ConfigError(f"trace file missing arrays: {missing}")
        packets = [
            Packet(
                flow=FlowKey(
                    src_ip=int(data["src"][i]),
                    dst_ip=int(data["dst"][i]),
                    src_port=int(data["sport"][i]),
                    dst_port=int(data["dport"][i]),
                    proto=int(data["proto"][i]),
                ),
                size=int(data["size"][i]),
                timestamp=float(data["timestamp"][i]),
            )
            for i in range(len(data["size"]))
        ]
    return Trace(packets)


def export_csv(trace: Trace, path: str | pathlib.Path) -> None:
    """Write a trace as CSV (one packet per row, header included)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_FIELDS)
        for packet in trace:
            flow = packet.flow
            writer.writerow(
                [
                    f"{packet.timestamp:.9f}",
                    flow.src_ip,
                    flow.dst_ip,
                    flow.src_port,
                    flow.dst_port,
                    flow.proto,
                    packet.size,
                ]
            )


def import_csv(path: str | pathlib.Path) -> Trace:
    """Read a CSV trace written by :func:`export_csv` (or compatible)."""
    packets: list[Packet] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or set(_CSV_FIELDS) - set(
            reader.fieldnames
        ):
            raise ConfigError(
                f"CSV must have columns {_CSV_FIELDS}, "
                f"got {reader.fieldnames}"
            )
        for row in reader:
            packets.append(
                Packet(
                    flow=FlowKey(
                        src_ip=int(row["src_ip"]),
                        dst_ip=int(row["dst_ip"]),
                        src_port=int(row["src_port"]),
                        dst_port=int(row["dst_port"]),
                        proto=int(row["proto"]),
                    ),
                    size=int(row["size"]),
                    timestamp=float(row["timestamp"]),
                )
            )
    packets.sort(key=lambda packet: packet.timestamp)
    return Trace(packets)
