"""Synthetic heavy-tailed trace generation.

Flow sizes follow a bounded Zipf (power-law) distribution — the
"heavy-tailed patterns dominated by a few large flows" [54, 59] that the
fast path's design assumes.  Per-epoch scale knobs default to a scaled
version of the paper's CAIDA workload (§7.1: 30-70K flows, 370-480K
packets, 260-330MB per host-epoch; mean packet size 769 bytes).

Generation is fully deterministic for a given :class:`TraceConfig` seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.common.flow import PROTO_TCP, PROTO_UDP, FlowKey, Packet
from repro.traffic.trace import Trace

MEAN_PACKET_SIZE = 769  # bytes; the paper's dataset mean (§7.1)
MAX_PACKET_SIZE = 1500
MIN_PACKET_SIZE = 64


@dataclass(frozen=True)
class TraceConfig:
    """Parameters for synthetic trace generation.

    Attributes
    ----------
    num_flows:
        Number of distinct 5-tuple flows in the epoch.
    zipf_alpha:
        Power-law exponent of flow sizes.  1.0-1.3 matches wide-area
        measurements; larger means more skew.
    duration:
        Epoch length in seconds (packet timestamps span ``[0, duration)``).
    mean_packet_size:
        Mean packet size in bytes.
    num_hosts_space:
        Size of the IP space to draw endpoints from.  Smaller values
        create more host-level aggregation (useful for DDoS/SS tasks).
    seed:
        RNG seed; equal configs generate identical traces.
    """

    num_flows: int = 5_000
    zipf_alpha: float = 1.2
    duration: float = 1.0
    mean_packet_size: int = MEAN_PACKET_SIZE
    num_hosts_space: int = 4_096
    seed: int = 1
    #: Fraction of packets concentrated into short bursts (0 = smooth
    #: arrivals).  Bursts are what overflow the FIFO in practice —
    #: "achieving line-rate measurement remains critical, especially in
    #: the face of traffic bursts" (§1).
    burstiness: float = 0.0
    #: Length of each burst as a fraction of the epoch.
    burst_width: float = 0.02

    def with_seed(self, seed: int) -> "TraceConfig":
        """A copy of this config with a different seed (for new epochs)."""
        return replace(self, seed=seed)


def zipf_flow_sizes(
    num_flows: int, alpha: float, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``num_flows`` packet counts from a bounded Zipf distribution.

    Returns packet counts per flow (>= 1), heavy-tailed with exponent
    ``alpha``: rank ``i`` gets weight ``1 / i**alpha``, scaled so the
    largest flows have hundreds of packets at the default scale.
    """
    if num_flows < 1:
        raise ValueError("num_flows must be >= 1")
    ranks = np.arange(1, num_flows + 1, dtype=np.float64)
    weights = ranks**-alpha
    # Scale so a mid-size trace lands near the paper's packets/flows ratio
    # (~8-12 packets per flow on average) while keeping min 1 packet.
    target_mean = 9.0
    counts = weights * (target_mean * num_flows / weights.sum())
    counts = np.maximum(1, np.round(counts)).astype(np.int64)
    # Random jitter so sizes aren't perfectly rank-ordered deterministic.
    jitter = rng.uniform(0.8, 1.25, size=num_flows)
    counts = np.maximum(1, np.round(counts * jitter)).astype(np.int64)
    return counts


def _random_flow_keys(
    num_flows: int, host_space: int, rng: np.random.Generator
) -> list[FlowKey]:
    """Draw distinct random 5-tuples from a bounded host space."""
    keys: set[FlowKey] = set()
    result: list[FlowKey] = []
    while len(result) < num_flows:
        need = num_flows - len(result)
        src = rng.integers(1, host_space + 1, size=need, dtype=np.int64)
        dst = rng.integers(1, host_space + 1, size=need, dtype=np.int64)
        sport = rng.integers(1024, 65536, size=need, dtype=np.int64)
        dport = rng.integers(1, 1024, size=need, dtype=np.int64)
        proto = rng.choice([PROTO_TCP, PROTO_UDP], size=need, p=[0.85, 0.15])
        for i in range(need):
            key = FlowKey(
                src_ip=int(src[i]),
                dst_ip=int(dst[i]),
                src_port=int(sport[i]),
                dst_port=int(dport[i]),
                proto=int(proto[i]),
            )
            if key not in keys:
                keys.add(key)
                result.append(key)
    return result


#: Real traffic clusters at a handful of exact packet sizes (ACKs at the
#: minimum, MTU-sized data, and path-MTU remnants).  The mixture below
#: has mean ~769 bytes, the paper's dataset mean.  The exact clustering
#: matters for fast-path dynamics: flows inserted at identical sizes are
#: whittled to zero together, so one kick-out pass evicts many of them —
#: the amortization Figure 16(a) measures.
_PACKET_SIZE_VALUES = np.array([64, 576, 1500], dtype=np.int64)
_PACKET_SIZE_PROBS = np.array([0.38, 0.20, 0.42])


def _packet_sizes(
    count: int, mean_size: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw packet sizes from the discrete empirical mixture.

    When ``mean_size`` differs from the default 769, the large-packet
    probability is shifted to match it while keeping the discrete
    support (sizes stay clustered at exact values).
    """
    probs = _PACKET_SIZE_PROBS
    default_mean = float(_PACKET_SIZE_VALUES @ probs)
    if abs(mean_size - default_mean) > 1.0:
        # Move mass between the smallest and largest size to hit the
        # requested mean; clamp to keep a valid distribution.
        small, mid, large = _PACKET_SIZE_VALUES.astype(np.float64)
        mid_p = probs[1]
        large_p = (mean_size - mid_p * mid - small * (1 - mid_p)) / (
            large - small
        )
        large_p = min(max(large_p, 0.01), 1.0 - mid_p - 0.01)
        probs = np.array([1.0 - mid_p - large_p, mid_p, large_p])
    return rng.choice(_PACKET_SIZE_VALUES, size=count, p=probs)


def _arrival_times(
    config: TraceConfig, total_packets: int, rng: np.random.Generator
) -> np.ndarray:
    """Packet arrival times: smooth, or with concentrated bursts.

    With ``burstiness = b``, a ``b`` fraction of packets lands inside
    a handful of ``burst_width``-long windows — the transient spikes
    the FIFO must absorb and the fast path must survive (§1, §3.1).
    """
    if not 0.0 <= config.burstiness <= 1.0:
        raise ValueError("burstiness must be in [0, 1]")
    smooth = rng.uniform(0.0, config.duration, size=total_packets)
    if config.burstiness <= 0.0:
        return smooth
    in_burst = rng.random(total_packets) < config.burstiness
    num_bursts = max(1, int(round(0.05 / config.burst_width)))
    starts = rng.uniform(
        0.0,
        config.duration * (1.0 - config.burst_width),
        size=num_bursts,
    )
    chosen = rng.integers(0, num_bursts, size=total_packets)
    burst_times = starts[chosen] + rng.uniform(
        0.0, config.duration * config.burst_width, size=total_packets
    )
    return np.where(in_burst, burst_times, smooth)


_SYN_PROBABILITY = 0.85


def _syn_first_packets(
    sizes: np.ndarray,
    flow_index: np.ndarray,
    num_flows: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Force most flows to open with a minimum-size packet (TCP SYN).

    Real connections start with a handshake packet at the minimum size;
    this detail matters downstream because fast-path insertions then
    cluster at identical residuals and are evicted in batches (§4.1's
    amortization, Figure 16a).
    """
    sizes = sizes.copy()
    first_seen = np.full(num_flows, -1, dtype=np.int64)
    for position, flow in enumerate(flow_index):
        if first_seen[flow] < 0:
            first_seen[flow] = position
    firsts = first_seen[first_seen >= 0]
    is_syn = rng.random(len(firsts)) < _SYN_PROBABILITY
    sizes[firsts[is_syn]] = MIN_PACKET_SIZE
    return sizes


def generate_trace(config: TraceConfig) -> Trace:
    """Generate one epoch of synthetic heavy-tailed traffic.

    Packets of all flows are interleaved uniformly over the epoch, which
    models the paper's replay setup (hosts send "as fast as possible",
    so the offered load is effectively flat within an epoch).
    """
    rng = np.random.default_rng(config.seed)
    packet_counts = zipf_flow_sizes(config.num_flows, config.zipf_alpha, rng)
    flow_keys = _random_flow_keys(
        config.num_flows, config.num_hosts_space, rng
    )

    total_packets = int(packet_counts.sum())
    flow_index = np.repeat(
        np.arange(config.num_flows, dtype=np.int64), packet_counts
    )
    timestamps = _arrival_times(config, total_packets, rng)
    order = np.argsort(timestamps, kind="stable")
    flow_index = flow_index[order]
    timestamps = timestamps[order]
    sizes = _packet_sizes(total_packets, config.mean_packet_size, rng)
    sizes = _syn_first_packets(sizes, flow_index, config.num_flows, rng)

    packets = [
        Packet(
            flow=flow_keys[int(flow_index[i])],
            size=int(sizes[i]),
            timestamp=float(timestamps[i]),
        )
        for i in range(total_packets)
    ]
    return Trace(packets)


def generate_epochs(
    config: TraceConfig, num_epochs: int, churn: float = 0.3
) -> list[Trace]:
    """Generate consecutive epochs with persistent flow population.

    Flow keys persist across epochs.  Each epoch, a ``churn`` fraction
    of the rank->flow assignment is re-shuffled: churned flows change
    size dramatically (heavy changers exist) while the rest keep their
    standing (persistent heavy hitters exist).  Epoch ``i`` spans
    ``[i * duration, (i+1) * duration)``.
    """
    if num_epochs < 1:
        raise ValueError("num_epochs must be >= 1")
    if not 0.0 <= churn <= 1.0:
        raise ValueError("churn must be in [0, 1]")
    rng = np.random.default_rng(config.seed)
    flow_keys = _random_flow_keys(
        config.num_flows, config.num_hosts_space, rng
    )
    assignment = rng.permutation(config.num_flows)
    epochs: list[Trace] = []
    for epoch_index in range(num_epochs):
        epoch_rng = np.random.default_rng(
            (config.seed, epoch_index, 0xE90C)
        )
        packet_counts = zipf_flow_sizes(
            config.num_flows, config.zipf_alpha, epoch_rng
        )
        if epoch_index > 0 and churn > 0:
            # Re-shuffle a churn-fraction of ranks among themselves.
            num_churned = max(1, int(churn * config.num_flows))
            churned = epoch_rng.choice(
                config.num_flows, size=num_churned, replace=False
            )
            assignment = assignment.copy()
            assignment[churned] = assignment[
                epoch_rng.permutation(churned)
            ]
        total_packets = int(packet_counts.sum())
        flow_index = np.repeat(assignment, packet_counts)
        offset = epoch_index * config.duration
        timestamps = offset + epoch_rng.uniform(
            0.0, config.duration, size=total_packets
        )
        order = np.argsort(timestamps, kind="stable")
        flow_index = flow_index[order]
        timestamps = timestamps[order]
        sizes = _packet_sizes(
            total_packets, config.mean_packet_size, epoch_rng
        )
        sizes = _syn_first_packets(
            sizes, flow_index, config.num_flows, epoch_rng
        )
        packets = [
            Packet(
                flow=flow_keys[int(flow_index[i])],
                size=int(sizes[i]),
                timestamp=float(timestamps[i]),
            )
            for i in range(total_packets)
        ]
        epochs.append(Trace(packets))
    return epochs
