"""Traffic substrate: synthetic heavy-tailed traces and exact ground truth.

The paper evaluates on one-hour CAIDA 2015 traces (30-70K flows and
370-480K packets per host-epoch).  Those traces are not redistributable,
so this package generates synthetic traces with the property the paper's
results rely on — heavy-tailed (Zipf) flow-size skew — plus injectable
DDoS, superspreader, and heavy-changer events so that every measurement
task has true positives to find.  Ground truth is computed exactly from
the generated packets.
"""

from repro.traffic.anomalies import (
    inject_ddos_victims,
    inject_heavy_changes,
    inject_superspreaders,
)
from repro.traffic.generator import TraceConfig, generate_trace
from repro.traffic.groundtruth import GroundTruth
from repro.traffic.trace import Trace

__all__ = [
    "GroundTruth",
    "Trace",
    "TraceConfig",
    "generate_trace",
    "inject_ddos_victims",
    "inject_heavy_changes",
    "inject_superspreaders",
]
