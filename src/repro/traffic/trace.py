"""Trace container: an ordered packet stream with epoch and host views.

A :class:`Trace` is an immutable ordered sequence of packets.  The paper
partitions traffic across hosts and reports per-epoch results; both views
are provided here.  Partitioning is flow-consistent (all packets of one
flow land on one host) to mirror the paper's hash-based traffic
assignment [47], which avoids double counting across the distributed data
plane.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Sequence

from repro.common.flow import FlowKey, Packet
from repro.common.hashing import mix64

_PARTITION_SEED = 0x5EED_0F_CAFE


class Trace:
    """An ordered, immutable stream of packets.

    Parameters
    ----------
    packets:
        Packets in arrival order.  Timestamps must be non-decreasing;
        this is validated because the data-plane simulation derives
        inter-arrival gaps from them.
    """

    def __init__(self, packets: Iterable[Packet]):
        self._packets: tuple[Packet, ...] = tuple(packets)
        previous = float("-inf")
        for packet in self._packets:
            if packet.timestamp < previous:
                raise ValueError("packet timestamps must be non-decreasing")
            previous = packet.timestamp

    def __len__(self) -> int:
        return len(self._packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._packets)

    def __getitem__(self, index: int) -> Packet:
        return self._packets[index]

    @property
    def packets(self) -> tuple[Packet, ...]:
        return self._packets

    @property
    def duration(self) -> float:
        """Time span covered by the trace (0 for an empty trace)."""
        if not self._packets:
            return 0.0
        return self._packets[-1].timestamp - self._packets[0].timestamp

    @property
    def total_bytes(self) -> int:
        return sum(packet.size for packet in self._packets)

    def flow_sizes(self) -> dict[FlowKey, int]:
        """Exact per-flow byte counts (the measurement ground truth)."""
        sizes: Counter[FlowKey] = Counter()
        for packet in self._packets:
            sizes[packet.flow] += packet.size
        return dict(sizes)

    def flow_packet_counts(self) -> dict[FlowKey, int]:
        """Exact per-flow packet counts."""
        counts: Counter[FlowKey] = Counter()
        for packet in self._packets:
            counts[packet.flow] += 1
        return dict(counts)

    def flows(self) -> set[FlowKey]:
        return {packet.flow for packet in self._packets}

    def split_epochs(self, epoch_length: float) -> list["Trace"]:
        """Split into consecutive epochs of ``epoch_length`` seconds.

        Epoch boundaries are relative to the first packet's timestamp.
        Every packet belongs to exactly one epoch; empty trailing epochs
        are not emitted.
        """
        if epoch_length <= 0:
            raise ValueError("epoch_length must be positive")
        if not self._packets:
            return []
        start = self._packets[0].timestamp
        epochs: list[list[Packet]] = []
        for packet in self._packets:
            index = int((packet.timestamp - start) / epoch_length)
            while len(epochs) <= index:
                epochs.append([])
            epochs[index].append(packet)
        return [Trace(bucket) for bucket in epochs if bucket]

    def partition(self, num_hosts: int) -> list["Trace"]:
        """Flow-consistent partition across ``num_hosts`` monitoring hosts.

        Each flow is assigned to ``hash(flow) % num_hosts`` so that no
        flow is observed (and counted) by two hosts — the paper's
        disjoint-monitoring assumption (§3.1).
        """
        if num_hosts < 1:
            raise ValueError("num_hosts must be >= 1")
        if num_hosts == 1:
            return [self]
        shards: list[list[Packet]] = [[] for _ in range(num_hosts)]
        for packet in self._packets:
            shard = mix64(packet.flow.key64 ^ _PARTITION_SEED) % num_hosts
            shards[shard].append(packet)
        return [Trace(shard) for shard in shards]

    def concat(self, other: "Trace") -> "Trace":
        """Concatenate two traces; ``other`` is shifted to start after self.

        Used to build multi-epoch workloads from per-epoch generators.
        """
        if not self._packets:
            return other
        if not other._packets:
            return self
        shift = self._packets[-1].timestamp - other._packets[0].timestamp
        if shift < 0:
            shift = 0.0
        shifted = [
            Packet(packet.flow, packet.size, packet.timestamp + shift)
            for packet in other._packets
        ]
        return Trace(list(self._packets) + shifted)

    @staticmethod
    def merge(traces: Sequence["Trace"]) -> "Trace":
        """Merge traces by timestamp order (e.g., re-join host shards)."""
        merged = sorted(
            (packet for trace in traces for packet in trace),
            key=lambda packet: packet.timestamp,
        )
        return Trace(merged)
