"""Trace container: an ordered packet stream with epoch and host views.

A :class:`Trace` is an immutable ordered sequence of packets.  The paper
partitions traffic across hosts and reports per-epoch results; both views
are provided here.  Partitioning is flow-consistent (all packets of one
flow land on one host) to mirror the paper's hash-based traffic
assignment [47], which avoids double counting across the distributed data
plane.

Besides the packet tuple, every trace carries cached *columnar* views —
``key64`` (pre-folded flow keys, uint64), ``sizes`` (int64) and
``timestamps`` (float64) — computed once per trace.  The batched data
plane (:mod:`repro.dataplane.switch`) and the vectorized sketch updates
consume these columns instead of walking packet objects.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.common.flow import FlowKey, Packet
from repro.common.hashing import mix64_array

_PARTITION_SEED = 0x5EED_0F_CAFE


class Trace:
    """An ordered, immutable stream of packets.

    Parameters
    ----------
    packets:
        Packets in arrival order.  Timestamps must be non-decreasing;
        this is validated (vectorized, via the timestamp column) because
        the data-plane simulation derives inter-arrival gaps from them.
    """

    __slots__ = ("_packets", "_timestamps", "_key64", "_sizes")

    def __init__(self, packets: Iterable[Packet]):
        self._packets: tuple[Packet, ...] = tuple(packets)
        timestamps = np.fromiter(
            (packet.timestamp for packet in self._packets),
            dtype=np.float64,
            count=len(self._packets),
        )
        if timestamps.size > 1 and np.any(np.diff(timestamps) < 0):
            raise ValueError("packet timestamps must be non-decreasing")
        timestamps.flags.writeable = False
        self._timestamps = timestamps
        self._key64: np.ndarray | None = None
        self._sizes: np.ndarray | None = None

    @classmethod
    def _from_columns(
        cls,
        packets: tuple[Packet, ...],
        timestamps: np.ndarray,
        key64: np.ndarray | None,
        sizes: np.ndarray | None,
    ) -> "Trace":
        """Internal: build a trace from already-validated columns.

        Used by :meth:`partition` / :meth:`split_epochs`, whose shards
        inherit slices of the parent's columns (order-preserving subsets
        of a non-decreasing sequence stay non-decreasing).
        """
        trace = cls.__new__(cls)
        trace._packets = packets
        for column in (timestamps, key64, sizes):
            if column is not None:
                column.flags.writeable = False
        trace._timestamps = timestamps
        trace._key64 = key64
        trace._sizes = sizes
        return trace

    def __len__(self) -> int:
        return len(self._packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._packets)

    def __getitem__(self, index: int) -> Packet:
        return self._packets[index]

    @property
    def packets(self) -> tuple[Packet, ...]:
        return self._packets

    # ------------------------------------------------------------------
    # Columnar views (computed once, then cached; arrays are read-only)
    # ------------------------------------------------------------------
    @property
    def timestamps(self) -> np.ndarray:
        """Packet timestamps as a read-only float64 column."""
        return self._timestamps

    @property
    def key64(self) -> np.ndarray:
        """Pre-folded 64-bit flow keys as a read-only uint64 column."""
        if self._key64 is None:
            column = np.fromiter(
                (packet.flow.key64 for packet in self._packets),
                dtype=np.uint64,
                count=len(self._packets),
            )
            column.flags.writeable = False
            self._key64 = column
        return self._key64

    @property
    def sizes(self) -> np.ndarray:
        """Packet byte sizes as a read-only int64 column."""
        if self._sizes is None:
            column = np.fromiter(
                (packet.size for packet in self._packets),
                dtype=np.int64,
                count=len(self._packets),
            )
            column.flags.writeable = False
            self._sizes = column
        return self._sizes

    def _take(self, indices: np.ndarray) -> "Trace":
        """A sub-trace at ``indices`` (non-decreasing), sharing columns."""
        packets = tuple(self._packets[i] for i in indices.tolist())
        return Trace._from_columns(
            packets,
            self._timestamps[indices],
            None if self._key64 is None else self._key64[indices],
            None if self._sizes is None else self._sizes[indices],
        )

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Time span covered by the trace (0 for an empty trace)."""
        if not self._packets:
            return 0.0
        return self._packets[-1].timestamp - self._packets[0].timestamp

    @property
    def total_bytes(self) -> int:
        return int(self.sizes.sum())

    def flow_sizes(self) -> dict[FlowKey, int]:
        """Exact per-flow byte counts (the measurement ground truth)."""
        sizes: Counter[FlowKey] = Counter()
        for packet in self._packets:
            sizes[packet.flow] += packet.size
        return dict(sizes)

    def flow_packet_counts(self) -> dict[FlowKey, int]:
        """Exact per-flow packet counts."""
        counts: Counter[FlowKey] = Counter()
        for packet in self._packets:
            counts[packet.flow] += 1
        return dict(counts)

    def flows(self) -> set[FlowKey]:
        return {packet.flow for packet in self._packets}

    def split_epochs(self, epoch_length: float) -> list["Trace"]:
        """Split into consecutive epochs of ``epoch_length`` seconds.

        Epoch boundaries are relative to the first packet's timestamp.
        Every packet belongs to exactly one epoch; empty trailing epochs
        are not emitted.
        """
        if epoch_length <= 0:
            raise ValueError("epoch_length must be positive")
        if not self._packets:
            return []
        start = self._timestamps[0]
        indices = (
            (self._timestamps - start) / epoch_length
        ).astype(np.int64)
        return [
            self._take(np.nonzero(indices == epoch)[0])
            for epoch in range(int(indices[-1]) + 1)
            if np.any(indices == epoch)
        ]

    def partition(self, num_hosts: int) -> list["Trace"]:
        """Flow-consistent partition across ``num_hosts`` monitoring hosts.

        Each flow is assigned to ``hash(flow) % num_hosts`` so that no
        flow is observed (and counted) by two hosts — the paper's
        disjoint-monitoring assumption (§3.1).  The assignment hash runs
        vectorized over the ``key64`` column.
        """
        if num_hosts < 1:
            raise ValueError("num_hosts must be >= 1")
        if num_hosts == 1:
            return [self]
        shards = (
            mix64_array(self.key64, seed=_PARTITION_SEED)
            % np.uint64(num_hosts)
        ).astype(np.int64)
        return [
            self._take(np.nonzero(shards == host)[0])
            for host in range(num_hosts)
        ]

    def concat(self, other: "Trace") -> "Trace":
        """Concatenate two traces; ``other`` is shifted to start after self.

        Used to build multi-epoch workloads from per-epoch generators.
        """
        if not self._packets:
            return other
        if not other._packets:
            return self
        shift = self._packets[-1].timestamp - other._packets[0].timestamp
        if shift < 0:
            shift = 0.0
        shifted = [
            Packet(packet.flow, packet.size, packet.timestamp + shift)
            for packet in other._packets
        ]
        return Trace(list(self._packets) + shifted)

    @staticmethod
    def merge(traces: Sequence["Trace"]) -> "Trace":
        """Merge traces by timestamp order (e.g., re-join host shards)."""
        merged = sorted(
            (packet for trace in traces for packet in trace),
            key=lambda packet: packet.timestamp,
        )
        return Trace(merged)
