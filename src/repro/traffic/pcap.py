"""Classic pcap (libpcap) import/export with minimal header parsing.

Lets the library ingest real captures: classic pcap global header +
per-packet records, Ethernet II framing, IPv4, TCP/UDP.  Packets that
are not IPv4 TCP/UDP are skipped (counted).  Export writes synthetic
traces back out as valid pcap files (Ethernet/IPv4/UDP skeletons with
correct lengths), so external tools can read what the generator made.

Only the stdlib ``struct`` module is used — no capture dependencies.
"""

from __future__ import annotations

import pathlib
import struct
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.flow import PROTO_TCP, PROTO_UDP, FlowKey, Packet
from repro.traffic.trace import Trace

_PCAP_MAGIC_LE = 0xA1B2C3D4
_PCAP_MAGIC_BE = 0xD4C3B2A1
_LINKTYPE_ETHERNET = 1
_ETHERTYPE_IPV4 = 0x0800

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


@dataclass
class PcapStats:
    """What an import saw."""

    records: int = 0
    decoded: int = 0
    skipped_non_ethernet_ip: int = 0
    skipped_non_tcp_udp: int = 0
    truncated: int = 0


def read_pcap(
    path: str | pathlib.Path,
) -> tuple[Trace, PcapStats]:
    """Parse a classic pcap file into a Trace of IPv4 TCP/UDP packets.

    Packet sizes use the record's original (on-the-wire) length;
    timestamps are rebased so the capture starts at t=0.
    """
    data = pathlib.Path(path).read_bytes()
    if len(data) < _GLOBAL_HEADER.size:
        raise ConfigError("not a pcap file: too short")
    magic = struct.unpack_from("<I", data, 0)[0]
    if magic == _PCAP_MAGIC_LE:
        endian = "<"
    elif magic == _PCAP_MAGIC_BE:
        endian = ">"
    else:
        raise ConfigError(f"not a pcap file: magic {magic:#x}")
    (_magic, _major, _minor, _tz, _sig, _snaplen, linktype) = (
        struct.unpack_from(endian + "IHHiIII", data, 0)
    )
    if linktype != _LINKTYPE_ETHERNET:
        raise ConfigError(
            f"unsupported linktype {linktype}; only Ethernet (1)"
        )

    record = struct.Struct(endian + "IIII")
    stats = PcapStats()
    packets: list[Packet] = []
    offset = _GLOBAL_HEADER.size
    first_ts: float | None = None
    while offset + record.size <= len(data):
        ts_sec, ts_usec, incl_len, orig_len = record.unpack_from(
            data, offset
        )
        offset += record.size
        payload = data[offset : offset + incl_len]
        offset += incl_len
        stats.records += 1
        if len(payload) < incl_len:
            stats.truncated += 1
            break
        parsed = _parse_ethernet_ipv4(payload)
        if parsed is None:
            stats.skipped_non_ethernet_ip += 1
            continue
        if isinstance(parsed, str):
            stats.skipped_non_tcp_udp += 1
            continue
        timestamp = ts_sec + ts_usec / 1e6
        if first_ts is None:
            first_ts = timestamp
        packets.append(
            Packet(
                flow=parsed,
                size=max(int(orig_len), 1),
                timestamp=timestamp - first_ts,
            )
        )
        stats.decoded += 1
    packets.sort(key=lambda packet: packet.timestamp)
    return Trace(packets), stats


def _parse_ethernet_ipv4(payload: bytes) -> FlowKey | str | None:
    """Returns a FlowKey, the string "non-tcp-udp", or None."""
    if len(payload) < 14 + 20:
        return None
    ethertype = struct.unpack_from("!H", payload, 12)[0]
    if ethertype != _ETHERTYPE_IPV4:
        return None
    ip_offset = 14
    version_ihl = payload[ip_offset]
    if version_ihl >> 4 != 4:
        return None
    ihl = (version_ihl & 0x0F) * 4
    if len(payload) < ip_offset + ihl + 4:
        return None
    proto = payload[ip_offset + 9]
    src_ip, dst_ip = struct.unpack_from(
        "!II", payload, ip_offset + 12
    )
    if proto not in (PROTO_TCP, PROTO_UDP):
        return "non-tcp-udp"
    l4_offset = ip_offset + ihl
    src_port, dst_port = struct.unpack_from("!HH", payload, l4_offset)
    return FlowKey(
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        proto=proto,
    )


def write_pcap(trace: Trace, path: str | pathlib.Path) -> None:
    """Write a trace as classic pcap (Ethernet/IPv4/UDP-or-TCP stubs).

    Each record's original length is the packet's byte size; the stored
    bytes are a minimal valid header stack (no payload), so captures
    stay small while wire lengths round-trip.
    """
    chunks = [
        _GLOBAL_HEADER.pack(
            _PCAP_MAGIC_LE, 2, 4, 0, 0, 65_535, _LINKTYPE_ETHERNET
        )
    ]
    for packet in trace:
        frame = _build_frame(packet)
        ts_sec = int(packet.timestamp)
        ts_usec = int(round((packet.timestamp - ts_sec) * 1e6))
        chunks.append(
            _RECORD_HEADER.pack(
                ts_sec, ts_usec, len(frame), max(packet.size, len(frame))
            )
        )
        chunks.append(frame)
    pathlib.Path(path).write_bytes(b"".join(chunks))


def _build_frame(packet: Packet) -> bytes:
    flow = packet.flow
    ip_total = max(packet.size - 14, 28)
    ethernet = (
        b"\x02\x00\x00\x00\x00\x01"
        + b"\x02\x00\x00\x00\x00\x02"
        + struct.pack("!H", _ETHERTYPE_IPV4)
    )
    ip_header = struct.pack(
        "!BBHHHBBHII",
        0x45,  # version 4, IHL 5
        0,
        min(ip_total, 65_535),
        0,
        0,
        64,  # TTL
        flow.proto,
        0,  # checksum left zero (tools tolerate it)
        flow.src_ip,
        flow.dst_ip,
    )
    if flow.proto == PROTO_UDP:
        l4 = struct.pack(
            "!HHHH",
            flow.src_port,
            flow.dst_port,
            max(ip_total - 20, 8),
            0,
        )
    else:
        l4 = struct.pack(
            "!HHIIBBHHH",
            flow.src_port,
            flow.dst_port,
            0,
            0,
            5 << 4,
            0x10,  # ACK
            65_535,
            0,
            0,
        )
    return ethernet + ip_header + l4
