"""Exact ground truth for every measurement task in §2.1.

The paper generates ground truth "by tracking the whole trace with a very
large hash table" (§7.3); here the trace is in memory, so ground truth is
exact by construction.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.common.flow import FlowKey
from repro.traffic.trace import Trace


@dataclass
class GroundTruth:
    """Exact traffic statistics for one epoch of one trace.

    Attributes
    ----------
    flow_bytes:
        Exact byte count per 5-tuple flow.
    flow_packets:
        Exact packet count per 5-tuple flow.
    fanin:
        Per destination IP: the set of distinct source IPs sending to it.
    fanout:
        Per source IP: the set of distinct destination IPs it sends to.
    """

    flow_bytes: dict[FlowKey, int] = field(default_factory=dict)
    flow_packets: dict[FlowKey, int] = field(default_factory=dict)
    fanin: dict[int, set[int]] = field(default_factory=dict)
    fanout: dict[int, set[int]] = field(default_factory=dict)

    @classmethod
    def from_trace(cls, trace: Trace) -> "GroundTruth":
        flow_bytes: Counter[FlowKey] = Counter()
        flow_packets: Counter[FlowKey] = Counter()
        fanin: dict[int, set[int]] = defaultdict(set)
        fanout: dict[int, set[int]] = defaultdict(set)
        for packet in trace:
            flow_bytes[packet.flow] += packet.size
            flow_packets[packet.flow] += 1
            fanin[packet.flow.dst_ip].add(packet.flow.src_ip)
            fanout[packet.flow.src_ip].add(packet.flow.dst_ip)
        return cls(
            flow_bytes=dict(flow_bytes),
            flow_packets=dict(flow_packets),
            fanin=dict(fanin),
            fanout=dict(fanout),
        )

    # ------------------------------------------------------------------
    # Task-level answers
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum(self.flow_bytes.values())

    @property
    def cardinality(self) -> int:
        """Number of distinct 5-tuple flows (§2.1 'Cardinality')."""
        return len(self.flow_bytes)

    def heavy_hitters(self, threshold: int) -> dict[FlowKey, int]:
        """Flows whose byte count exceeds ``threshold`` in this epoch."""
        return {
            flow: size
            for flow, size in self.flow_bytes.items()
            if size > threshold
        }

    def heavy_changers(
        self, other: "GroundTruth", threshold: int
    ) -> dict[FlowKey, int]:
        """Flows whose |byte-count change| vs ``other`` exceeds threshold."""
        changes: dict[FlowKey, int] = {}
        for flow in set(self.flow_bytes) | set(other.flow_bytes):
            delta = abs(
                self.flow_bytes.get(flow, 0) - other.flow_bytes.get(flow, 0)
            )
            if delta > threshold:
                changes[flow] = delta
        return changes

    def ddos_victims(self, threshold: int) -> dict[int, int]:
        """Destination IPs receiving from more than ``threshold`` sources."""
        return {
            dst: len(srcs)
            for dst, srcs in self.fanin.items()
            if len(srcs) > threshold
        }

    def superspreaders(self, threshold: int) -> dict[int, int]:
        """Source IPs sending to more than ``threshold`` destinations."""
        return {
            src: len(dsts)
            for src, dsts in self.fanout.items()
            if len(dsts) > threshold
        }

    def flow_size_distribution(
        self, bucket_edges: list[int] | None = None
    ) -> dict[int, int]:
        """Histogram of flow *packet counts* per size value.

        Returns ``{size: number of flows with exactly that packet count}``
        when ``bucket_edges`` is None; otherwise counts per bucket, where
        bucket ``i`` covers ``[edges[i], edges[i+1])``.
        """
        counts = Counter(self.flow_packets.values())
        if bucket_edges is None:
            return dict(counts)
        histogram: dict[int, int] = {i: 0 for i in range(len(bucket_edges))}
        for size, num_flows in counts.items():
            for i in reversed(range(len(bucket_edges))):
                if size >= bucket_edges[i]:
                    histogram[i] += num_flows
                    break
        return histogram

    @property
    def entropy(self) -> float:
        """Shannon entropy of the flow byte-count distribution (bits).

        Normalised per the common definition used by UnivMon:
        ``H = -sum_f (v_f / V) log2(v_f / V)``.
        """
        total = self.total_bytes
        if total == 0:
            return 0.0
        entropy = 0.0
        for size in self.flow_bytes.values():
            p = size / total
            entropy -= p * math.log2(p)
        return entropy

    def merge(self, other: "GroundTruth") -> "GroundTruth":
        """Network-wide ground truth from two host-local ground truths."""
        flow_bytes = Counter(self.flow_bytes)
        flow_bytes.update(other.flow_bytes)
        flow_packets = Counter(self.flow_packets)
        flow_packets.update(other.flow_packets)
        fanin = {dst: set(srcs) for dst, srcs in self.fanin.items()}
        for dst, srcs in other.fanin.items():
            fanin.setdefault(dst, set()).update(srcs)
        fanout = {src: set(dsts) for src, dsts in self.fanout.items()}
        for src, dsts in other.fanout.items():
            fanout.setdefault(src, set()).update(dsts)
        return GroundTruth(
            flow_bytes=dict(flow_bytes),
            flow_packets=dict(flow_packets),
            fanin=fanin,
            fanout=fanout,
        )
