"""Anomaly injection: DDoS victims, superspreaders, heavy changes.

Synthetic base traffic rarely contains hosts with fan-in/fan-out far
above the crowd, so the DDoS and superspreader tasks would have nothing
to detect.  These helpers splice anomalous flows into an existing trace
while keeping timestamps ordered, and return both the new trace and the
injected entities so tests can assert detection against a known answer.
"""

from __future__ import annotations

import numpy as np

from repro.common.flow import PROTO_UDP, FlowKey, Packet
from repro.traffic.trace import Trace

_ATTACK_PACKET_SIZE = 120  # small packets, typical of floods


def _splice(trace: Trace, extra: list[Packet]) -> Trace:
    """Merge extra packets into a trace preserving timestamp order."""
    merged = sorted(
        list(trace.packets) + extra, key=lambda packet: packet.timestamp
    )
    return Trace(merged)


def inject_ddos_victims(
    trace: Trace,
    num_victims: int,
    sources_per_victim: int,
    packets_per_source: int = 10,
    seed: int = 7,
) -> tuple[Trace, list[int]]:
    """Inject ``num_victims`` destinations flooded by many distinct sources.

    Each victim receives a flood flow of ``packets_per_source`` small
    packets from each of ``sources_per_victim`` distinct source IPs
    (drawn from a reserved IP range above 2**24, which the base
    generator never uses), spread uniformly over the trace duration —
    real flood sources fire repeatedly, which is also what lets a
    partially-observing data plane still see most of them.

    Returns the new trace and the victim destination IPs.
    """
    if num_victims < 1 or sources_per_victim < 1:
        raise ValueError("num_victims and sources_per_victim must be >= 1")
    if packets_per_source < 1:
        raise ValueError("packets_per_source must be >= 1")
    rng = np.random.default_rng(seed)
    start = trace.packets[0].timestamp if len(trace) else 0.0
    duration = trace.duration or 1.0
    victims = [2**24 + 1000 + i for i in range(num_victims)]
    extra: list[Packet] = []
    for victim_index, victim in enumerate(victims):
        for source_index in range(sources_per_victim):
            flow = FlowKey(
                src_ip=2**25 + victim_index * 1_000_000 + source_index,
                dst_ip=victim,
                src_port=int(rng.integers(1024, 65536)),
                dst_port=80,
                proto=PROTO_UDP,
            )
            for _ in range(packets_per_source):
                timestamp = start + float(rng.uniform(0.0, duration))
                extra.append(
                    Packet(flow, _ATTACK_PACKET_SIZE, timestamp)
                )
    return _splice(trace, extra), victims


def inject_superspreaders(
    trace: Trace,
    num_spreaders: int,
    destinations_per_spreader: int,
    packets_per_destination: int = 10,
    seed: int = 11,
) -> tuple[Trace, list[int]]:
    """Inject sources that each contact many distinct destinations.

    The mirror image of :func:`inject_ddos_victims` (§2.1: a
    superspreader is the opposite of a DDoS victim).
    """
    if num_spreaders < 1 or destinations_per_spreader < 1:
        raise ValueError(
            "num_spreaders and destinations_per_spreader must be >= 1"
        )
    if packets_per_destination < 1:
        raise ValueError("packets_per_destination must be >= 1")
    rng = np.random.default_rng(seed)
    start = trace.packets[0].timestamp if len(trace) else 0.0
    duration = trace.duration or 1.0
    spreaders = [2**24 + 2000 + i for i in range(num_spreaders)]
    extra: list[Packet] = []
    for spreader_index, spreader in enumerate(spreaders):
        for dest_index in range(destinations_per_spreader):
            flow = FlowKey(
                src_ip=spreader,
                dst_ip=2**26 + spreader_index * 1_000_000 + dest_index,
                src_port=int(rng.integers(1024, 65536)),
                dst_port=443,
                proto=PROTO_UDP,
            )
            for _ in range(packets_per_destination):
                timestamp = start + float(rng.uniform(0.0, duration))
                extra.append(
                    Packet(flow, _ATTACK_PACKET_SIZE, timestamp)
                )
    return _splice(trace, extra), spreaders


def inject_heavy_changes(
    epoch_a: Trace,
    epoch_b: Trace,
    num_changers: int,
    change_bytes: int,
    seed: int = 13,
) -> tuple[Trace, Trace, list[FlowKey]]:
    """Create flows whose volume changes by ``change_bytes`` across epochs.

    Each injected flow sends ``change_bytes`` in epoch B but nothing in
    epoch A (the maximal change), as a burst of MTU-sized packets.

    Returns the (unchanged) epoch A, the modified epoch B, and the
    injected changer flows.
    """
    if num_changers < 1 or change_bytes < 1:
        raise ValueError("num_changers and change_bytes must be >= 1")
    rng = np.random.default_rng(seed)
    start = epoch_b.packets[0].timestamp if len(epoch_b) else 0.0
    duration = epoch_b.duration or 1.0
    changers: list[FlowKey] = []
    extra: list[Packet] = []
    packet_size = 1500
    packets_needed = max(1, change_bytes // packet_size)
    remainder = change_bytes - (packets_needed - 1) * packet_size
    for changer_index in range(num_changers):
        flow = FlowKey(
            src_ip=2**24 + 3000 + changer_index,
            dst_ip=2**24 + 900_000 + changer_index,
            src_port=40_000 + changer_index % 20_000,
            dst_port=8080,
        )
        changers.append(flow)
        for packet_index in range(packets_needed):
            size = packet_size if packet_index else remainder
            timestamp = start + float(rng.uniform(0.0, duration))
            extra.append(Packet(flow, max(64, size), timestamp))
    return epoch_a, _splice(epoch_b, extra), changers
