"""Supervised data plane: heartbeats, watchdog, restart-with-replay.

The :class:`Supervisor` owns the failure policy the checkpoint layer
only enables.  Per host, per epoch it:

1. asks the fault plan for the cell's **mid-epoch schedule**
   (:meth:`~repro.faults.plan.FaultPlan.dataplane_schedule_for`) and
   drives the engine ``stop_at`` each scheduled offset — a ``dp_crash``
   discards the live engine (its state is "lost"), a ``hang`` first
   burns the watchdog timeout before the watchdog declares it dead;
2. **restarts** the host from its newest restorable checkpoint and
   replays only the journaled tail, up to ``max_restarts`` times —
   replay is bit-identical, so a recovered epoch's
   :class:`~repro.dataplane.engine.SwitchReport` equals an uncrashed
   run's;
3. past ``max_restarts`` the host **gives up** the epoch and is handed
   to PR 3's degraded merge as a missing host;
4. a **circuit breaker** counts consecutive gave-up epochs per host and
   quarantines flappers for ``quarantine_epochs`` epochs (they sit out
   entirely — no restart churn, straight to degraded merge).

Heartbeats (``heartbeat_every`` packets) update a per-host liveness
table that :meth:`Supervisor.stalled_hosts` checks against the watchdog
timeout; the same boundary drives the optional cycle-budget checkpoint
trigger.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.dataplane.engine import HostEngine, arrival_cycles_array
from repro.dataplane.host import LocalReport
from repro.durability.checkpoint import (
    DEFAULT_CHECKPOINT_EVERY,
    Checkpointer,
)
from repro.faults.plan import FaultKind
from repro.fastpath.topk import FastPath


@dataclass
class HostOutcome:
    """What the supervisor did for one host in one epoch."""

    host_id: int
    #: The host's report, or ``None`` when the epoch was forfeited
    #: (quarantined, gave up, or unrecoverable).
    report: LocalReport | None = None
    restarts: int = 0
    crashes: int = 0
    hangs: int = 0
    replayed_packets: int = 0
    checkpoint_writes: int = 0
    checkpoint_bytes: int = 0
    restores: int = 0
    corrupt_snapshots: int = 0
    #: Wall-clock seconds spent restoring + positioning for replay.
    recovery_seconds: float = 0.0
    #: Simulated seconds the watchdog waited out hung runs.
    watchdog_wait: float = 0.0
    quarantined: bool = False
    gave_up: bool = False

    @property
    def recovered(self) -> bool:
        """Did this host crash/hang and still deliver its report?"""
        return self.report is not None and (
            self.crashes + self.hangs
        ) > 0


@dataclass
class CircuitBreaker:
    """Per-peer circuit-breaker state, keyed by epoch.

    ``threshold`` consecutive failed epochs open the breaker for
    ``quarantine_epochs`` epochs, during which the peer is skipped
    outright.  Shared by the supervisor (hosts whose data plane keeps
    giving up) and the cluster transport (hosts whose report channel
    keeps failing) so both layers quarantine flapping peers with the
    same policy.
    """

    streak: int = 0
    open_until: int = 0  # first epoch the peer may run again

    def is_open(self, epoch: int) -> bool:
        """Whether the peer is quarantined for ``epoch``."""
        return epoch < self.open_until

    def record_failure(
        self, epoch: int, threshold: int, quarantine_epochs: int
    ) -> bool:
        """Count one failed epoch; returns True when this failure
        trips the breaker (the peer enters quarantine)."""
        self.streak += 1
        if self.streak >= threshold:
            self.open_until = epoch + 1 + quarantine_epochs
            self.streak = 0
            return True
        return False

    def record_success(self) -> None:
        self.streak = 0


#: Backward-compatible alias (pre-cluster internal name).
_Breaker = CircuitBreaker


class Supervisor:
    """Run hosts' epochs under checkpointing with crash recovery.

    Parameters
    ----------
    checkpoint_dir:
        Root directory for per-host checkpoints and WALs.
    plan:
        Optional :class:`~repro.faults.FaultPlan` supplying the
        mid-epoch (data-plane) fault schedule.  ``None`` supervises a
        fault-free run — checkpoints are still written (covering real
        external kills), nothing ever restarts.
    injector:
        Optional :class:`~repro.faults.FaultInjector` whose counters
        record each fired data-plane fault.
    checkpoint_every:
        Snapshot interval in packets (absolute-offset aligned).
    cycle_budget:
        Optional additional snapshot trigger in simulated producer
        cycles, checked at heartbeat boundaries.
    heartbeat_every:
        Heartbeat interval in packets.
    watchdog_timeout:
        Seconds without a heartbeat before :meth:`stalled_hosts` flags
        a host; also the simulated wait charged per ``hang`` fault.
    max_restarts:
        Restarts allowed per host per epoch before it gives up and
        falls to the degraded merge.
    quarantine_threshold:
        Consecutive gave-up epochs that trip the circuit breaker.
    quarantine_epochs:
        Epochs a tripped host sits out before being retried.
    """

    def __init__(
        self,
        checkpoint_dir: str,
        plan=None,
        injector=None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        cycle_budget: float | None = None,
        heartbeat_every: int = 2048,
        watchdog_timeout: float = 1.0,
        max_restarts: int = 2,
        quarantine_threshold: int = 3,
        quarantine_epochs: int = 2,
    ):
        self.checkpoint_dir = checkpoint_dir
        self.plan = plan
        self.injector = injector
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.cycle_budget = cycle_budget
        self.heartbeat_every = max(1, int(heartbeat_every))
        self.watchdog_timeout = watchdog_timeout
        self.max_restarts = max(0, int(max_restarts))
        self.quarantine_threshold = max(1, int(quarantine_threshold))
        self.quarantine_epochs = max(1, int(quarantine_epochs))
        #: host_id → (epoch, offset, wall-clock timestamp) of the last
        #: heartbeat; the watchdog's liveness table.
        self.heartbeats: dict[int, tuple[int, int, float]] = {}
        self._checkpointers: dict[int, Checkpointer] = {}
        self._breakers: dict[int, CircuitBreaker] = {}

    # ------------------------------------------------------------------
    def checkpointer_for(self, host_id: int) -> Checkpointer:
        """The (lazily created) per-host checkpointer."""
        ckpt = self._checkpointers.get(host_id)
        if ckpt is None:
            ckpt = Checkpointer(
                self.checkpoint_dir,
                host_id,
                every_packets=self.checkpoint_every,
                cycle_budget=self.cycle_budget,
            )
            self._checkpointers[host_id] = ckpt
        return ckpt

    def stalled_hosts(self, now: float | None = None) -> list[int]:
        """Hosts whose last heartbeat is older than the watchdog
        timeout (the liveness view an external monitor would poll)."""
        if now is None:
            now = time.perf_counter()
        return sorted(
            host_id
            for host_id, (_epoch, _offset, seen) in self.heartbeats.items()
            if now - seen > self.watchdog_timeout
        )

    # ------------------------------------------------------------------
    def run_epoch(
        self, hosts, shards, offered_gbps, epoch: int
    ) -> list[HostOutcome]:
        """Run every host's shard for one epoch under supervision."""
        return [
            self._run_host(host, shard, offered_gbps, epoch)
            for host, shard in zip(hosts, shards)
        ]

    def _run_host(self, host, shard, offered_gbps, epoch) -> HostOutcome:
        outcome = HostOutcome(host_id=host.host_id)
        breaker = self._breakers.setdefault(
            host.host_id, CircuitBreaker()
        )
        if breaker.is_open(epoch):
            outcome.quarantined = True
            return outcome

        ckpt = self.checkpointer_for(host.host_id)
        writes0 = ckpt.stats.writes
        bytes0 = ckpt.stats.bytes_written
        restores0 = ckpt.stats.restores
        corrupt0 = ckpt.stats.corrupt_snapshots

        switch = host.switch
        engine = HostEngine(
            sketch=host.sketch,
            fastpath=host.fastpath,
            cost_model=switch.cost_model,
            ideal=switch.ideal,
            fifo=switch.buffer,
        )
        packets = shard.packets
        arrivals = arrival_cycles_array(
            shard, offered_gbps, switch.cost_model
        )
        if arrivals is not None:
            arrivals = arrivals.tolist()

        faults = []
        if self.plan is not None:
            faults = list(
                self.plan.dataplane_schedule_for(
                    epoch, host.host_id, len(packets)
                )
            )

        ckpt.begin_epoch(epoch, engine)
        self._heartbeat(epoch, engine, host.host_id, ckpt)

        on_checkpoint = lambda e: ckpt.write(epoch, e)  # noqa: E731
        on_heartbeat = lambda e: self._heartbeat(  # noqa: E731
            epoch, e, host.host_id, ckpt
        )

        report = None
        while True:
            stop_at = faults[0].offset if faults else None
            engine.run(
                packets,
                arrivals,
                stop_at=stop_at,
                checkpoint_every=self.checkpoint_every,
                on_checkpoint=on_checkpoint,
                heartbeat_every=self.heartbeat_every,
                on_heartbeat=on_heartbeat,
            )
            if not faults:
                report = engine.finish()
                break

            # The scheduled fault strikes now: the live engine's state
            # is gone (crash) or unreachable (hang until the watchdog
            # shoots it).  Either way recovery is restore + replay.
            fault = faults.pop(0)
            if self.injector is not None:
                self.injector.record(fault.kind)
            if fault.kind is FaultKind.HANG:
                outcome.hangs += 1
                outcome.watchdog_wait += self.watchdog_timeout
            else:
                outcome.crashes += 1

            if outcome.restarts >= self.max_restarts:
                outcome.gave_up = True
                break
            outcome.restarts += 1
            lost_offset = engine.offset
            began = time.perf_counter()
            restored = ckpt.restore(epoch, switch.cost_model)
            outcome.recovery_seconds += time.perf_counter() - began
            if restored is None:
                # Every journaled snapshot (baseline included) failed
                # to decode — nothing to replay from.
                outcome.gave_up = True
                break
            outcome.replayed_packets += lost_offset - restored.offset
            engine = restored

        outcome.checkpoint_writes = ckpt.stats.writes - writes0
        outcome.checkpoint_bytes = ckpt.stats.bytes_written - bytes0
        outcome.restores = ckpt.stats.restores - restores0
        outcome.corrupt_snapshots = (
            ckpt.stats.corrupt_snapshots - corrupt0
        )

        if outcome.gave_up:
            breaker.record_failure(
                epoch,
                self.quarantine_threshold,
                self.quarantine_epochs,
            )
            return outcome

        breaker.record_success()
        snapshot = (
            engine.fastpath.snapshot()
            if isinstance(engine.fastpath, FastPath)
            else None
        )
        outcome.report = LocalReport(
            host_id=host.host_id,
            sketch=engine.sketch,
            fastpath=snapshot,
            switch=report,
        )
        return outcome

    # ------------------------------------------------------------------
    def _heartbeat(self, epoch, engine, host_id, ckpt) -> None:
        self.heartbeats[host_id] = (
            epoch, engine.offset, time.perf_counter()
        )
        ckpt.maybe_cycle_write(epoch, engine)
