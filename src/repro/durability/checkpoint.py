"""Periodic engine checkpoints plus a tiny write-ahead journal.

Layout (one directory per host under the configured root)::

    <root>/host_0003/
        wal_epoch_000007.jsonl       # one JSON record per checkpoint
        ckpt_000007_000000000000.skvs  # baseline (offset 0)
        ckpt_000007_000000008192.skvs  # every K packets thereafter

The WAL is the journal of trace offsets: each line records which
snapshot file covers the epoch up to which offset.  Recovery reads it
*tolerantly* — a torn tail (the crash hit mid-append) simply ends the
journal at the last complete line — then walks the records backwards,
skipping any snapshot whose CRC-checked decode fails, until one
restores.  A baseline checkpoint at offset 0 is written at epoch start,
so restore can always fall back to "replay the whole shard" and never
has to give up on corruption alone.

Checkpoint boundaries are aligned to *absolute* trace offsets
(``offset % K == 0``), not to the restart point — so a host that
crashes, restores, and crashes again re-encounters the same boundaries
and the same journal, keeping multi-crash runs deterministic.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.common.errors import ReproError
from repro.durability.codec import StateCodec

#: Default snapshot interval in packets — small enough that replay
#: after a crash is cheap, large enough that snapshot cost stays well
#: under the bench's 10% throughput budget (see BENCH_checkpoint.json).
DEFAULT_CHECKPOINT_EVERY = 16384


def checkpoint_from_env() -> tuple[str | None, int | None]:
    """The environment-gated checkpoint config (mirrors ``REPRO_CHAOS``).

    ``REPRO_CHECKPOINT_DIR=<dir>`` enables durable host state for every
    :class:`PipelineConfig` built without an explicit ``checkpoint_dir``
    (how CI's crash-recovery leg turns the whole suite durable);
    ``REPRO_CHECKPOINT_EVERY=<K>`` overrides the snapshot interval.
    Returns ``(None, None)`` when unset, keeping durability opt-in.
    """
    directory = os.environ.get("REPRO_CHECKPOINT_DIR", "")
    if not directory:
        return None, None
    every = os.environ.get("REPRO_CHECKPOINT_EVERY", "")
    try:
        every_packets = int(every) if every else None
    except ValueError:
        every_packets = None
    if every_packets is not None and every_packets < 1:
        every_packets = None
    return directory, every_packets


@dataclass
class CheckpointStats:
    """Lifetime counters of one host's checkpointer."""

    writes: int = 0
    bytes_written: int = 0
    restores: int = 0
    corrupt_snapshots: int = 0


class WriteAheadLog:
    """Append-only JSON-lines journal with torn-tail-tolerant reads."""

    def __init__(self, path: str):
        self.path = path

    def reset(self) -> None:
        """Truncate the journal (start of a new epoch)."""
        with open(self.path, "w", encoding="utf-8"):
            pass

    def append(self, record: dict) -> None:
        """Append one record; the trailing newline commits it (a crash
        mid-write leaves a torn last line that reads ignore)."""
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()

    def records(self) -> list[dict]:
        """Every complete record, in append order.

        Stops at the first line that is not valid JSON — by
        construction only the final line can be torn, and anything
        after a corrupt line is not trustworthy either way.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError:
            return []
        records: list[dict] = []
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                break
            if not isinstance(record, dict):
                break
            records.append(record)
        return records


class Checkpointer:
    """Snapshot one host's engine every K packets, journal the offset.

    Parameters
    ----------
    root:
        Checkpoint root directory (one subdirectory per host).
    host_id:
        The host this checkpointer serves.
    every_packets:
        Snapshot interval (absolute-offset aligned).
    cycle_budget:
        Optional: also snapshot whenever the producer clock has
        advanced this many simulated cycles since the last snapshot
        (checked at heartbeat boundaries, which are cheaper than
        per-packet checks).
    """

    def __init__(
        self,
        root: str,
        host_id: int,
        every_packets: int = DEFAULT_CHECKPOINT_EVERY,
        cycle_budget: float | None = None,
        codec: StateCodec | None = None,
    ):
        self.host_id = host_id
        self.every_packets = max(1, int(every_packets))
        self.cycle_budget = cycle_budget
        self.directory = os.path.join(root, f"host_{host_id:04d}")
        os.makedirs(self.directory, exist_ok=True)
        self.codec = codec or StateCodec()
        self.stats = CheckpointStats()
        self._epoch: int | None = None
        self._wal: WriteAheadLog | None = None
        self._last_snapshot_cycles = 0.0

    # ------------------------------------------------------------------
    def _wal_path(self, epoch: int) -> str:
        return os.path.join(
            self.directory, f"wal_epoch_{epoch:06d}.jsonl"
        )

    def _snapshot_name(self, epoch: int, offset: int) -> str:
        return f"ckpt_{epoch:06d}_{offset:012d}.skvs"

    # ------------------------------------------------------------------
    def begin_epoch(self, epoch: int, engine) -> None:
        """Start an epoch: prune older epochs' files, truncate the
        WAL, and write the offset-0 baseline snapshot."""
        for name in os.listdir(self.directory):
            if not (name.startswith("ckpt_") or name.startswith("wal_")):
                continue
            try:
                os.remove(os.path.join(self.directory, name))
            except OSError:
                pass
        self._epoch = epoch
        self._wal = WriteAheadLog(self._wal_path(epoch))
        self._wal.reset()
        self._last_snapshot_cycles = engine.producer
        self.write(epoch, engine)

    def write(self, epoch: int, engine) -> None:
        """Snapshot the engine now and journal the trace offset."""
        blob = self.codec.snapshot_engine(engine)
        name = self._snapshot_name(epoch, engine.offset)
        path = os.path.join(self.directory, name)
        # Write-then-rename so a crash mid-write never leaves a partial
        # file under the journaled name (the WAL record lands after the
        # rename, which is the actual commit point).
        tmp_path = path + ".tmp"
        with open(tmp_path, "wb") as handle:
            handle.write(blob)
            handle.flush()
        os.replace(tmp_path, path)
        self._wal.append(
            {
                "epoch": epoch,
                "offset": engine.offset,
                "file": name,
                "bytes": len(blob),
            }
        )
        self.stats.writes += 1
        self.stats.bytes_written += len(blob)
        self._last_snapshot_cycles = engine.producer

    def maybe_cycle_write(self, epoch: int, engine) -> bool:
        """Cycle-budget trigger (called from heartbeat boundaries)."""
        if self.cycle_budget is None:
            return False
        if (
            engine.producer - self._last_snapshot_cycles
            < self.cycle_budget
        ):
            return False
        self.write(epoch, engine)
        return True

    # ------------------------------------------------------------------
    def restore(self, epoch: int, cost_model):
        """The newest restorable engine for ``epoch``, or ``None``.

        Walks the journal backwards past torn/corrupt snapshots; the
        baseline entry makes total corruption the only way to return
        ``None``.
        """
        wal = WriteAheadLog(self._wal_path(epoch))
        for record in reversed(wal.records()):
            if record.get("epoch") != epoch:
                continue
            name = record.get("file")
            if not isinstance(name, str) or os.sep in name:
                continue
            path = os.path.join(self.directory, name)
            try:
                with open(path, "rb") as handle:
                    blob = handle.read()
                engine = self.codec.restore_engine(blob, cost_model)
            except (OSError, ReproError):
                self.stats.corrupt_snapshots += 1
                continue
            self.stats.restores += 1
            return engine
        return None
