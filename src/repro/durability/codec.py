"""The snapshot wire format: versioned, CRC-checked engine state.

A snapshot must capture *everything* that determines the rest of an
epoch so a restarted host is indistinguishable from one that never
crashed (the bit-identity contract of ``tests/test_durability.py``):

* the normal-path **sketch** (any registered sketch type — CountMin
  through UnivMon — serialized by value);
* the **fast-path table**: every flow's ``(e, r, d)`` counters, the
  ``V``/``E`` globals, and the operation counters, in insertion order
  (Misra-Gries eviction picks the *first* entry at the minimum, so
  table order is semantically load-bearing);
* the **FIFO backlog** — queued ``(packet, enqueue_cycle)`` pairs the
  consumer has not drained yet;
* the **cursor**: trace offset, producer/consumer clocks, and the
  partially filled :class:`SwitchReport`.

The frame mirrors the report transport's defensive shape::

    MAGIC "SKVS" | version (1B) | length (4B, BE) | crc32 (4B, BE) | payload

and the payload is deserialized through the transport's *restricted*
unpickler, so a checkpoint file at rest is held to the same trust
standard as a frame on the wire.
"""

from __future__ import annotations

import pickle
import struct
import zlib

from repro.common.errors import CorruptSnapshotError, ReproError
from repro.common.flow import FlowKey, Packet
from repro.controlplane.transport import restricted_loads
from repro.dataplane.engine import HostEngine, SwitchReport
from repro.fastpath.misra_gries import MGEntry, MisraGriesTopK
from repro.fastpath.topk import FastPath, FlowEntry

_MAGIC = b"SKVS"
_VERSION = 1
_HEADER = struct.Struct(">4sBII")

#: ``state["format"]`` tag of an engine snapshot payload.
_ENGINE_FORMAT = "host-engine/v1"


class StateCodec:
    """Encode/decode arbitrary repro state behind a checked frame.

    :meth:`encode` / :meth:`decode` round-trip any allowlisted object
    (sketches, snapshots, plain containers) — the property tests sweep
    every sketch type through them.  :meth:`snapshot_engine` /
    :meth:`restore_engine` specialize them for a full
    :class:`HostEngine`, flattening the fast path into an explicit,
    version-stable structure instead of pickling the live object.
    """

    MAGIC = _MAGIC
    VERSION = _VERSION
    header_size = _HEADER.size

    # ------------------------------------------------------------------
    def encode(self, obj) -> bytes:
        """Frame ``obj`` as ``MAGIC | version | length | crc | payload``."""
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        return (
            _HEADER.pack(
                _MAGIC, _VERSION, len(payload), zlib.crc32(payload)
            )
            + payload
        )

    def decode(self, blob: bytes):
        """Validate the frame and return the deserialized payload.

        Raises :class:`CorruptSnapshotError` on a short buffer, bad
        magic, unknown version, length mismatch, CRC mismatch, or an
        unparseable payload — every corruption a torn write or flipped
        bit at rest can produce.
        """
        if len(blob) < _HEADER.size:
            raise CorruptSnapshotError(
                "snapshot too short for a frame header"
            )
        magic, version, length, crc = _HEADER.unpack_from(blob, 0)
        if magic != _MAGIC:
            raise CorruptSnapshotError(
                f"bad snapshot magic {magic!r}"
            )
        if version != _VERSION:
            raise CorruptSnapshotError(
                f"unsupported snapshot version {version}"
            )
        payload = blob[_HEADER.size :]
        if len(payload) != length:
            raise CorruptSnapshotError(
                f"snapshot length mismatch: header says {length}, got "
                f"{len(payload)} payload bytes"
            )
        if zlib.crc32(payload) != crc:
            raise CorruptSnapshotError(
                "snapshot CRC32 mismatch (file corrupted at rest)"
            )
        try:
            return restricted_loads(payload)
        except ReproError:
            raise
        except Exception as exc:
            raise CorruptSnapshotError(
                f"snapshot payload is not a valid pickle: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def snapshot_engine(self, engine: HostEngine) -> bytes:
        """Serialize a :class:`HostEngine` mid-epoch.

        Snapshots sit on the epoch's hot path (every K packets), so the
        expensive pieces — the report's flow sets and the FIFO backlog
        — are packed structurally (104-bit flow headers, plain tuples)
        instead of pickling tens of thousands of :class:`FlowKey`
        objects; packing is ~6x cheaper and :meth:`restore_engine`
        rebuilds the exact same objects on the (rare) recovery path.
        """
        fifo = engine.fifo
        state = {
            "format": _ENGINE_FORMAT,
            "ideal": engine.ideal,
            "offset": engine.offset,
            "producer": engine.producer,
            "consumer": engine.consumer,
            "sketch": engine.sketch,
            "fastpath": _freeze_fastpath(engine.fastpath),
            "fifo": {
                "capacity": fifo.capacity,
                "high_water": fifo.high_water,
                "queue": [
                    (
                        packet.flow.key104,
                        packet.size,
                        packet.timestamp,
                        enqueued,
                    )
                    for packet, enqueued in fifo._queue
                ],
            },
            "report": _pack_report(engine.report),
        }
        return self.encode(state)

    def restore_engine(self, blob: bytes, cost_model) -> HostEngine:
        """Rebuild a :class:`HostEngine` from :meth:`snapshot_engine`.

        Every restored object is *fresh* — nothing aliases the crashed
        engine's (possibly inconsistent) live state.
        """
        state = self.decode(blob)
        if (
            not isinstance(state, dict)
            or state.get("format") != _ENGINE_FORMAT
        ):
            raise CorruptSnapshotError(
                "snapshot payload is not a host-engine state"
            )
        try:
            fifo_state = state["fifo"]
            engine = HostEngine(
                sketch=state["sketch"],
                fastpath=_thaw_fastpath(state["fastpath"]),
                cost_model=cost_model,
                buffer_packets=fifo_state["capacity"],
                ideal=state["ideal"],
            )
            engine.offset = state["offset"]
            engine.producer = state["producer"]
            engine.consumer = state["consumer"]
            engine.report = _unpack_report(state["report"])
            engine.fifo.restore(
                [
                    (
                        Packet(
                            flow=FlowKey.from_key104(key),
                            size=size,
                            timestamp=timestamp,
                        ),
                        enqueued,
                    )
                    for key, size, timestamp, enqueued in fifo_state[
                        "queue"
                    ]
                ],
                fifo_state["high_water"],
            )
        except ReproError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptSnapshotError(
                f"malformed host-engine state: {exc}"
            ) from exc
        return engine


# ----------------------------------------------------------------------
# Report flattening
# ----------------------------------------------------------------------


def _pack_report(report: SwitchReport) -> dict:
    """Flatten a :class:`SwitchReport`, flow sets as 104-bit headers."""
    state = dict(vars(report))
    state["normal_flows"] = [
        flow.key104 for flow in report.normal_flows
    ]
    state["fastpath_flows"] = [
        flow.key104 for flow in report.fastpath_flows
    ]
    return state


def _unpack_report(state) -> SwitchReport:
    """Inverse of :func:`_pack_report` (exact: key104 is bijective)."""
    if not isinstance(state, dict):
        raise CorruptSnapshotError(
            "snapshot report is not a packed SwitchReport"
        )
    return SwitchReport(
        **{
            **state,
            "normal_flows": {
                FlowKey.from_key104(key)
                for key in state["normal_flows"]
            },
            "fastpath_flows": {
                FlowKey.from_key104(key)
                for key in state["fastpath_flows"]
            },
        }
    )


# ----------------------------------------------------------------------
# Fast-path flattening
# ----------------------------------------------------------------------


def _freeze_fastpath(fastpath):
    """Flatten a live fast path into a structural dict (or ``None``).

    Entries are emitted in table-insertion order: both trackers iterate
    their dict during kick-out passes, so order must survive the
    round-trip for the resumed run to stay bit-identical.
    """
    if fastpath is None:
        return None
    if isinstance(fastpath, FastPath):
        return {
            "kind": "sketchvisor",
            "memory_bytes": fastpath.memory_bytes,
            "delta": fastpath.delta,
            "entries": [
                (flow.key104, entry.e, entry.r, entry.d)
                for flow, entry in fastpath.table.items()
            ],
            "total_bytes": fastpath.total_bytes,
            "total_decremented": fastpath.total_decremented,
            "num_updates": fastpath.num_updates,
            "num_hits": fastpath.num_hits,
            "num_inserts": fastpath.num_inserts,
            "num_kickouts": fastpath.num_kickouts,
            "num_evicted": fastpath.num_evicted,
            "num_rejected": fastpath.num_rejected,
        }
    if isinstance(fastpath, MisraGriesTopK):
        return {
            "kind": "misra_gries",
            "memory_bytes": fastpath.memory_bytes,
            "entries": [
                (flow.key104, entry.r)
                for flow, entry in fastpath.table.items()
            ],
            "total_bytes": fastpath.total_bytes,
            "total_decremented": fastpath.total_decremented,
            "num_updates": fastpath.num_updates,
            "num_hits": fastpath.num_hits,
            "num_inserts": fastpath.num_inserts,
            "num_kickouts": fastpath.num_kickouts,
            "num_evicted": fastpath.num_evicted,
        }
    raise CorruptSnapshotError(
        f"cannot snapshot fast path of type {type(fastpath).__name__}"
    )


def _thaw_fastpath(state):
    """Rebuild a fast path from :func:`_freeze_fastpath` output."""
    if state is None:
        return None
    kind = state.get("kind")
    if kind == "sketchvisor":
        fastpath = FastPath(
            memory_bytes=state["memory_bytes"], delta=state["delta"]
        )
        for key, e, r, d in state["entries"]:
            fastpath.table[FlowKey.from_key104(key)] = FlowEntry(
                e=e, r=r, d=d
            )
        fastpath.total_bytes = state["total_bytes"]
        fastpath.total_decremented = state["total_decremented"]
        fastpath.num_updates = state["num_updates"]
        fastpath.num_hits = state["num_hits"]
        fastpath.num_inserts = state["num_inserts"]
        fastpath.num_kickouts = state["num_kickouts"]
        fastpath.num_evicted = state["num_evicted"]
        fastpath.num_rejected = state["num_rejected"]
        return fastpath
    if kind == "misra_gries":
        fastpath = MisraGriesTopK(memory_bytes=state["memory_bytes"])
        for key, r in state["entries"]:
            fastpath.table[FlowKey.from_key104(key)] = MGEntry(r=r)
        fastpath.total_bytes = state["total_bytes"]
        fastpath.total_decremented = state["total_decremented"]
        fastpath.num_updates = state["num_updates"]
        fastpath.num_hits = state["num_hits"]
        fastpath.num_inserts = state["num_inserts"]
        fastpath.num_kickouts = state["num_kickouts"]
        fastpath.num_evicted = state["num_evicted"]
        return fastpath
    raise CorruptSnapshotError(
        f"unknown fast-path kind {kind!r} in snapshot"
    )
