"""Durable host state: checkpointing, WAL replay, supervised restart.

PR 3 hardened the *report path* (retries, degraded merge); this package
hardens the *data plane*: a host that crashes or hangs mid-epoch no
longer forfeits the epoch.  Three layers compose the guarantee:

* :class:`~repro.durability.codec.StateCodec` — serializes every sketch
  type, the fast-path top-k table (``(e, r, d)`` counters plus the
  ``V``/``E`` globals), and the FIFO backlog into a versioned,
  CRC32-checked binary snapshot with exact round-trip;
* :class:`~repro.durability.checkpoint.Checkpointer` — snapshots a
  :class:`~repro.dataplane.engine.HostEngine` every K packets (or on a
  cycle budget) and journals the trace offset in a tiny write-ahead
  log, so a restarted host resumes from the last checkpoint and
  replays only the journaled tail — bit-identical to an uncrashed run;
* :class:`~repro.durability.supervisor.Supervisor` — per-host
  heartbeats, a watchdog for hung workers, bounded restart-with-replay
  (escalating to PR 3's degraded merge after R failed restarts), and a
  circuit breaker quarantining flapping hosts.

Everything is **off by default**: a pipeline without ``checkpoint_dir``
never constructs any of it and runs bit-identically to a build without
this package.  See ``docs/robustness.md``.
"""

from repro.durability.checkpoint import (
    DEFAULT_CHECKPOINT_EVERY,
    Checkpointer,
    CheckpointStats,
    WriteAheadLog,
    checkpoint_from_env,
)
from repro.durability.codec import StateCodec
from repro.durability.supervisor import (
    CircuitBreaker,
    HostOutcome,
    Supervisor,
)

__all__ = [
    "Checkpointer",
    "CheckpointStats",
    "DEFAULT_CHECKPOINT_EVERY",
    "CircuitBreaker",
    "HostOutcome",
    "StateCodec",
    "Supervisor",
    "WriteAheadLog",
    "checkpoint_from_env",
]
