"""Control plane (§3.2, §5): network-wide recovery via compressive sensing.

The controller collects per-host :class:`~repro.dataplane.host.LocalReport`
objects, merges them into a single sketch ``N``, a single top-k table
``H`` (with Lemma 4.1 bounds) and a total fast-path volume ``V``, then
recovers the *true* sketch ``T = N + sk(x + y)`` by solving the matrix
interpolation problem of §5.2 with the LENS-style objective (Eq. 4):

    minimize  alpha*||T||_*  +  beta*||x||_1  +  (1/2 gamma)*||y||_F^2

subject to the volume constraint (Eq. 2) and the per-flow box
constraints from the fast path (Eq. 3).
"""

from repro.controlplane.controller import Controller, NetworkResult
from repro.controlplane.lens import LensConfig, LensResult, lens_interpolate
from repro.controlplane.merge import (
    merge_fastpath_snapshots,
    merge_sketches,
    rescale_sketch,
    rescale_snapshot,
)
from repro.controlplane.rank_analysis import low_rank_error_curve
from repro.controlplane.recovery import (
    DegradedEpoch,
    RecoveryMode,
    recover,
)
from repro.controlplane.transport import (
    CollectionResult,
    CollectionStats,
    ReportCollector,
    decode_report,
    decode_stream,
    encode_report,
    encode_stream,
    peek_header,
)

__all__ = [
    "CollectionResult",
    "CollectionStats",
    "Controller",
    "DegradedEpoch",
    "LensConfig",
    "LensResult",
    "NetworkResult",
    "RecoveryMode",
    "ReportCollector",
    "decode_report",
    "decode_stream",
    "encode_report",
    "encode_stream",
    "lens_interpolate",
    "low_rank_error_curve",
    "merge_fastpath_snapshots",
    "merge_sketches",
    "peek_header",
    "recover",
    "rescale_sketch",
    "rescale_snapshot",
]
