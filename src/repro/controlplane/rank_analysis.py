"""Low-rank approximation analysis of sketch matrices (Figure 5).

The paper justifies the nuclear-norm term in the recovery objective by
showing that real sketch matrices are approximately low-rank: Reversible
Sketch, Deltoid, and TwoLevel reach <10% relative error with ~50%, ~32%
and ~15% of their singular values, while Count-Min (rank == its few
rows) shows a straight line.
"""

from __future__ import annotations

import numpy as np


def low_rank_error_curve(
    matrix: np.ndarray, ratios: list[float] | None = None
) -> list[tuple[float, float]]:
    """Relative Frobenius error of rank-``r`` approximations.

    For each ratio ``q`` of retained top singular values, returns
    ``(q, ||M - M_q||_F / ||M||_F)`` — exactly the curve of Figure 5.
    """
    if ratios is None:
        ratios = [i / 10.0 for i in range(11)]
    m = np.asarray(matrix, dtype=np.float64)
    singular_values = np.linalg.svd(m, compute_uv=False)
    total_energy = float((singular_values**2).sum())
    if total_energy == 0:
        return [(q, 0.0) for q in ratios]
    rank = len(singular_values)
    curve: list[tuple[float, float]] = []
    for q in ratios:
        keep = int(round(q * rank))
        tail_energy = float((singular_values[keep:] ** 2).sum())
        curve.append((q, float(np.sqrt(tail_energy / total_energy))))
    return curve


def ratio_for_error(
    matrix: np.ndarray, target_error: float = 0.10
) -> float:
    """Smallest ratio of singular values achieving the target error.

    The paper quotes these: ~0.50 (RevSketch), ~0.32 (Deltoid),
    ~0.15 (TwoLevel); 1.0 means no useful low-rank structure
    (Count-Min).
    """
    m = np.asarray(matrix, dtype=np.float64)
    singular_values = np.linalg.svd(m, compute_uv=False)
    total_energy = float((singular_values**2).sum())
    if total_energy == 0:
        return 0.0
    rank = len(singular_values)
    cumulative = np.cumsum(singular_values**2)
    for keep in range(rank + 1):
        head = cumulative[keep - 1] if keep else 0.0
        error = np.sqrt(max(total_energy - head, 0.0) / total_energy)
        if error <= target_error:
            return keep / rank
    return 1.0
