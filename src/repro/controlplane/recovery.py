"""Network-wide recovery (§5): rebuild the true sketch ``T``.

Five recovery modes reproduce the paper's accuracy arms (§7.3):

* ``NO_RECOVERY`` (NR) — use the merged normal-path sketch only,
  discarding everything the fast path saw;
* ``LOWER`` (LR) — re-inject each tracked flow at its Lemma 4.1 lower
  bound;
* ``UPPER`` (UR) — re-inject at the upper bound;
* ``SKETCHVISOR`` — solve the compressive-sensing interpolation
  (Eq. 4) for the per-flow estimates ``x`` *and* the small-flow noise
  ``Y``, then rebuild ``T = N + sk(x) + Y``;
* ``IDEAL`` is not a recovery mode — it is produced by running the data
  plane with no capacity limit (see :mod:`repro.dataplane.switch`).

Re-injection uses the sketch's own ``update``/``inject`` path so that
non-linear structures (FlowRadar's XOR fields, UnivMon's trackers,
TwoLevel's candidate sketch) are restored exactly for tracked flows —
their headers are known from the merged hash table ``H``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.common.flow import FlowKey
from repro.controlplane.lens import LensConfig, lens_interpolate
from repro.fastpath.topk import FastPathSnapshot
from repro.sketches.base import Sketch
from repro.telemetry import trace_span
from repro.telemetry.publish import publish_recovery_residual

#: Synthetic small-flow prior: untracked flows are smaller than the
#: fast path's tracking boundary and follow the same power law the
#: fast path itself assumes (PLC, §4.2); a theta=1 Pareto truncated to
#: [64 B, boundary] matches the missing-flow mean within ~10% across
#: fast-path sizes on heavy-tailed workloads.  The number of synthetic
#: flows realizing a given missing volume is what zero-counting
#: estimators (LC/FM/kMin, TwoLevel inner arrays) ultimately see.
_MIN_FLOW_BYTES = 64.0
_MAX_SYNTHETIC_FLOWS = 500_000


class RecoveryMode(Enum):
    """Control-plane recovery strategy (§7.3 alternatives)."""

    NO_RECOVERY = "nr"
    LOWER = "lr"
    UPPER = "ur"
    SKETCHVISOR = "sketchvisor"


@dataclass
class RecoveredState:
    """Output of network-wide recovery."""

    sketch: Sketch
    flow_estimates: dict[FlowKey, float]
    lens_iterations: int = 0
    lens_converged: bool = True
    #: Fast-path volume re-injected for tracked flows (Σx).
    tracked_bytes: float = 0.0
    #: Untracked small-flow mass realized synthetically (the Eq. 2
    #: remainder ``V - Σx``; zero when recovery skipped it).
    small_flow_bytes: float = 0.0


@dataclass(frozen=True)
class DegradedEpoch:
    """Annotation for an epoch merged without a full set of reports.

    Produced by the controller when at least a quorum — but not all —
    of the expected hosts delivered, and attached to the epoch's
    :class:`~repro.controlplane.controller.NetworkResult` so operators
    and the monitoring loop can see exactly what the result is missing.
    """

    expected_hosts: int
    reported_hosts: int
    missing_hosts: tuple[int, ...]
    #: Volume rescale applied to the merged sketch and the recovery's
    #: Eq. 2 constraint (``expected / reported``; 1.0 when rescaling
    #: was disabled).
    scale: float
    #: Collection epoch, when known (pipeline runs know it; direct
    #: ``Controller.aggregate`` callers may not).
    epoch: int | None = None

    @property
    def missing_share(self) -> float:
        """Fraction of hosts (≈ traffic share, §3.1) that never
        reported."""
        if self.expected_hosts <= 0:
            return 0.0
        return 1.0 - self.reported_hosts / self.expected_hosts

    @property
    def error_inflation(self) -> float:
        """First-order estimate of relative-error inflation.

        Rescaling by ``n/k`` multiplies every surviving counter — and
        therefore every per-flow estimate's error — by the same
        factor, so estimates degrade by about ``n/k - 1`` relative:
        ``f / (1 - f)`` for missing share ``f`` (≈ 33% at 1-of-4
        missing).  Aggregate volumes stay unbiased under the
        exchangeable-host assumption; flows homed on missing hosts are
        unrecoverable and bound recall instead (see
        ``docs/robustness.md``).
        """
        share = self.missing_share
        if share >= 1.0:
            return float("inf")
        return share / (1.0 - share)


def _copy_sketch(sketch: Sketch) -> Sketch:
    clone = sketch.clone_empty()
    clone.merge(sketch)
    return clone


def _inject(sketch: Sketch, flow: FlowKey, value: float) -> None:
    amount = int(round(value))
    if amount > 0:
        sketch.inject(flow, amount)


def recover(
    normal: Sketch,
    snapshot: FastPathSnapshot | None,
    mode: RecoveryMode = RecoveryMode.SKETCHVISOR,
    lens_config: LensConfig | None = None,
    telemetry=None,
) -> RecoveredState:
    """Recover the network-wide sketch from merged local results.

    Parameters
    ----------
    normal:
        The merged normal-path sketch ``N`` (not modified).
    snapshot:
        The merged fast-path table ``H`` plus globals ``V``/``E``; may
        be ``None`` when the fast path never activated.
    mode:
        Recovery strategy.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; receives the
        ``recovery.lens`` / ``recovery.inject`` spans and the final
        solver residual.
    """
    if snapshot is None or (
        not snapshot.entries and snapshot.total_bytes == 0
    ):
        return RecoveredState(
            sketch=_copy_sketch(normal), flow_estimates={}
        )

    if mode is RecoveryMode.NO_RECOVERY:
        return RecoveredState(
            sketch=_copy_sketch(normal), flow_estimates={}
        )

    flows = list(snapshot.entries)
    lower = [snapshot.entries[f].lower_bound for f in flows]
    upper = [snapshot.entries[f].upper_bound for f in flows]

    if mode is RecoveryMode.LOWER or mode is RecoveryMode.UPPER:
        bounds = lower if mode is RecoveryMode.LOWER else upper
        recovered = _copy_sketch(normal)
        estimates: dict[FlowKey, float] = {}
        for flow, value in zip(flows, bounds):
            _inject(recovered, flow, value)
            estimates[flow] = float(value)
        return RecoveredState(
            sketch=recovered,
            flow_estimates=estimates,
            tracked_bytes=float(sum(estimates.values())),
        )

    # SketchVisor: full compressive-sensing interpolation.
    try:
        positions = [normal.matrix_positions(flow) for flow in flows]
    except NotImplementedError:
        # Sketch without a linear operator (e.g. kMin): fall back to
        # midpoint injection, which still honours the Eq. 3 box, and
        # realize the small-flow mass the same way as the solver path.
        recovered = _copy_sketch(normal)
        estimates = {}
        for flow, lo, hi in zip(flows, lower, upper):
            midpoint = (lo + hi) / 2.0
            _inject(recovered, flow, midpoint)
            estimates[flow] = midpoint
        remaining = max(
            0.0, snapshot.total_bytes - sum(estimates.values())
        )
        _inject_synthetic_small_flows(
            recovered,
            remaining,
            _tracking_boundary(snapshot),
            count=_missing_flow_count(snapshot),
        )
        return RecoveredState(
            sketch=recovered,
            flow_estimates=estimates,
            tracked_bytes=float(sum(estimates.values())),
            small_flow_bytes=remaining,
        )

    with trace_span(
        telemetry, "recovery.lens", flows=len(flows), mode=mode.value
    ):
        result = lens_interpolate(
            n_matrix=normal.to_matrix(),
            positions=positions,
            lower=lower,
            upper=upper,
            volume=snapshot.total_bytes,
            low_rank=normal.low_rank,
            config=lens_config,
        )
    if telemetry is not None and result.residuals:
        publish_recovery_residual(
            telemetry.registry, float(result.residuals[-1])
        )

    recovered = _copy_sketch(normal)
    estimates = {}
    with trace_span(telemetry, "recovery.inject", flows=len(flows)):
        for flow, value in zip(flows, result.x):
            _inject(recovered, flow, value)
            estimates[flow] = float(value)
        # Realize the small-flow component y as synthetic flows rather
        # than the solver's dense noise matrix: sk(y) is *sparse* (each
        # missed small flow touches a handful of counters), and
        # zero-counting estimators (Linear Counting, FM, TwoLevel's
        # inner arrays) are destroyed by dense noise but restored by a
        # sparse realization with the right total volume.  See DESIGN.md.
        remaining = max(
            0.0, snapshot.total_bytes - float(result.x.sum())
        )
        _inject_synthetic_small_flows(
            recovered,
            remaining,
            _tracking_boundary(snapshot),
            count=_missing_flow_count(snapshot),
        )
    return RecoveredState(
        sketch=recovered,
        flow_estimates=estimates,
        lens_iterations=result.iterations,
        lens_converged=result.converged,
        tracked_bytes=float(result.x.sum()),
        small_flow_bytes=remaining,
    )


def _missing_flow_count(snapshot: FastPathSnapshot) -> int | None:
    """Estimated number of flows the fast path saw but no longer tracks.

    ``None`` when the snapshot carries no insert/evict counters (then
    the caller falls back to the mass-anchored Pareto estimate).
    """
    if snapshot.insert_count <= 0:
        return None
    return max(
        0,
        int(round(snapshot.distinct_flow_hint)) - len(snapshot.entries),
    )


def _tracking_boundary(snapshot: FastPathSnapshot) -> float:
    """The smallest byte count still tracked in the merged table ``H``.

    Untracked flows must sit below it (a larger flow would have been
    kept, Lemma 4.1), so it truncates the synthetic small-flow prior.
    """
    if not snapshot.entries:
        return 1500.0
    return max(
        min(entry.estimate for entry in snapshot.entries.values()),
        _MIN_FLOW_BYTES * 1.01,
    )


def _inject_synthetic_small_flows(
    sketch: Sketch,
    volume: float,
    boundary: float,
    count: int | None = None,
) -> None:
    """Deposit ``volume`` bytes of untracked small-flow mass (Eq. 2).

    Flow sizes are drawn from a theta=1 Pareto truncated to
    ``[64 B, boundary]`` — the same skew assumption the fast path's
    eviction threshold fits (§4.2, PLC) — where ``boundary`` is the
    smallest flow still tracked in ``H`` (nothing larger can be
    missing, by Lemma 4.1).  When ``count`` is given (from the
    snapshot's insert/evict counters) exactly that many flows are
    injected with sizes rescaled to the target mass, so both the
    missing flow *count* and the missing *volume* are honoured.
    5-tuples are drawn uniformly from the flow space (collisions with
    real flows are negligible at 2^-32).  Deterministic for a given
    sketch seed, so repeated recoveries agree.
    """
    if volume <= 0:
        return
    low = _MIN_FLOW_BYTES
    high = max(boundary, low * 1.01)
    rng = np.random.default_rng(sketch.seed ^ 0x5EED_CAFE)
    inv_low, inv_high = 1.0 / low, 1.0 / high

    if count is None:
        # Mass-anchored: Pareto mean ~ low * ln(high/low).
        import math

        mean = low * math.log(high / low) / (1.0 - low / high)
        count = int(round(volume / max(mean, low)))
    count = max(0, min(count, _MAX_SYNTHETIC_FLOWS))
    if count == 0:
        return
    draws = 1.0 / (
        inv_low - rng.random(count) * (inv_low - inv_high)
    )
    draws *= volume / draws.sum()
    for size in draws:
        flow = FlowKey(
            src_ip=int(rng.integers(1, 2**32)),
            dst_ip=int(rng.integers(1, 2**32)),
            src_port=int(rng.integers(1024, 65536)),
            dst_port=int(rng.integers(1, 1024)),
        )
        sketch.inject(flow, max(1, int(round(size))))
