"""The SketchVisor controller: one-big-switch aggregation (§3.2).

Collects per-host :class:`LocalReport` objects for an epoch, merges the
normal-path sketches and fast-path tables, runs network-wide recovery,
and hands measurement tasks a single recovered sketch — as if all
traffic had been recorded by one switch's normal path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.common.errors import MergeError
from repro.common.flow import FlowKey
from repro.controlplane.lens import LensConfig
from repro.controlplane.merge import (
    merge_fastpath_snapshots,
    merge_sketches,
)
from repro.controlplane.recovery import RecoveryMode, recover
from repro.dataplane.host import LocalReport
from repro.fastpath.topk import FastPathSnapshot
from repro.sketches.base import Sketch
from repro.telemetry import Telemetry, trace_span
from repro.telemetry.publish import publish_controller_epoch


@dataclass
class NetworkResult:
    """Network-wide measurement state for one epoch."""

    sketch: Sketch
    flow_estimates: dict[FlowKey, float] = field(default_factory=dict)
    snapshot: FastPathSnapshot | None = None
    num_hosts: int = 0
    lens_iterations: int = 0
    lens_converged: bool = True


class Controller:
    """Centralized control plane.

    Parameters
    ----------
    mode:
        Recovery strategy applied after merging (§7.3 arms).
    lens_config:
        Optional compressive-sensing solver parameters.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` to receive merge /
        recovery spans and counters.
    """

    def __init__(
        self,
        mode: RecoveryMode = RecoveryMode.SKETCHVISOR,
        lens_config: LensConfig | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.mode = mode
        self.lens_config = lens_config
        self.telemetry = telemetry

    def aggregate(self, reports: Sequence[LocalReport]) -> NetworkResult:
        """Merge per-host reports and run network-wide recovery."""
        if not reports:
            raise MergeError("no host reports to aggregate")
        with trace_span(
            self.telemetry, "controlplane.merge", reports=len(reports)
        ):
            merged_sketch = merge_sketches([r.sketch for r in reports])
            merged_snapshot = merge_fastpath_snapshots(
                [r.fastpath for r in reports]
            )
        with trace_span(
            self.telemetry, "controlplane.recover", mode=self.mode.value
        ):
            state = recover(
                normal=merged_sketch,
                snapshot=merged_snapshot,
                mode=self.mode,
                lens_config=self.lens_config,
                telemetry=self.telemetry,
            )
        network = NetworkResult(
            sketch=state.sketch,
            flow_estimates=state.flow_estimates,
            snapshot=merged_snapshot,
            num_hosts=len(reports),
            lens_iterations=state.lens_iterations,
            lens_converged=state.lens_converged,
        )
        if self.telemetry is not None:
            publish_controller_epoch(self.telemetry.registry, network)
        return network
