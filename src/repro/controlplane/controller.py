"""The SketchVisor controller: one-big-switch aggregation (§3.2).

Collects per-host :class:`LocalReport` objects for an epoch, merges the
normal-path sketches and fast-path tables, runs network-wide recovery,
and hands measurement tasks a single recovered sketch — as if all
traffic had been recorded by one switch's normal path.

The merge is *degradation-aware*: when the caller says how many hosts
were expected (``aggregate(..., expected_hosts=n)``) and fewer
reported, the controller proceeds as long as a quorum did — rescaling
the merged sketch and the recovery's volume constraint for the missing
share and annotating the result with a :class:`DegradedEpoch` record —
and raises :class:`QuorumError` only when too few hosts survive to say
anything defensible about the network.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.common.errors import MergeError, QuorumError
from repro.common.flow import FlowKey
from repro.controlplane.lens import LensConfig
from repro.controlplane.merge import (
    merge_fastpath_snapshots,
    merge_sketches,
    rescale_sketch,
    rescale_snapshot,
)
from repro.controlplane.recovery import (
    DegradedEpoch,
    RecoveryMode,
    recover,
)
from repro.dataplane.host import LocalReport
from repro.fastpath.topk import FastPathSnapshot
from repro.sketches.base import Sketch
from repro.telemetry import Telemetry, trace_span
from repro.telemetry.publish import publish_controller_epoch


@dataclass
class NetworkResult:
    """Network-wide measurement state for one epoch."""

    sketch: Sketch
    flow_estimates: dict[FlowKey, float] = field(default_factory=dict)
    snapshot: FastPathSnapshot | None = None
    num_hosts: int = 0
    lens_iterations: int = 0
    lens_converged: bool = True
    #: Fast-path volume recovery re-injected for tracked flows and the
    #: synthetic small-flow remainder (the Eq. 2 decomposition; both
    #: zero when the fast path never activated or recovery skipped it).
    tracked_bytes: float = 0.0
    small_flow_bytes: float = 0.0
    #: Present when the epoch was merged from fewer hosts than
    #: expected; ``None`` for clean full-quorum epochs.
    degraded: DegradedEpoch | None = None


class Controller:
    """Centralized control plane.

    Parameters
    ----------
    mode:
        Recovery strategy applied after merging (§7.3 arms).
    lens_config:
        Optional compressive-sensing solver parameters.
    quorum:
        Minimum fraction of expected hosts that must report before an
        epoch is merged at all; below it :meth:`aggregate` raises
        :class:`QuorumError`.  Only consulted when the caller passes
        ``expected_hosts``.
    degraded_rescale:
        Scale the merged sketch and fast-path volume by
        ``expected / reported`` in degraded epochs so network-wide
        aggregates stay unbiased (hosts carry exchangeable traffic
        shares, §3.1).  Disable to merge the surviving reports as-is.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` to receive merge /
        recovery spans and counters.
    """

    def __init__(
        self,
        mode: RecoveryMode = RecoveryMode.SKETCHVISOR,
        lens_config: LensConfig | None = None,
        quorum: float = 0.5,
        degraded_rescale: bool = True,
        telemetry: Telemetry | None = None,
    ):
        if not 0.0 < quorum <= 1.0:
            raise MergeError(
                f"quorum must be in (0, 1], got {quorum}"
            )
        self.mode = mode
        self.lens_config = lens_config
        self.quorum = quorum
        self.degraded_rescale = degraded_rescale
        self.telemetry = telemetry

    def aggregate(
        self,
        reports: Sequence[LocalReport],
        *,
        expected_hosts: int | None = None,
        missing_hosts: Sequence[int] = (),
        epoch: int | None = None,
        reported_hosts: int | None = None,
    ) -> NetworkResult:
        """Merge per-host reports and run network-wide recovery.

        Parameters
        ----------
        reports:
            The reports that actually arrived.
        expected_hosts:
            How many hosts *should* have reported.  Omitted (the
            default) the merge behaves exactly as before — whatever
            arrived is the whole network.  Provided, it arms quorum
            checking and degraded-mode rescaling.
        missing_hosts:
            Ids of the hosts known to be missing (from the report
            collector); recorded in the :class:`DegradedEpoch`.
        epoch:
            Epoch number, recorded in the :class:`DegradedEpoch`.
        reported_hosts:
            How many *hosts* the ``reports`` sequence represents.
            Defaults to ``len(reports)``; the hierarchical cluster
            controller passes the underlying host count when each
            entry is a partial aggregate already merged from a whole
            aggregator group, so quorum and degraded rescale stay
            keyed to hosts rather than aggregators.
        """
        reported = (
            len(reports) if reported_hosts is None else reported_hosts
        )
        expected = (
            reported if expected_hosts is None else expected_hosts
        )
        if expected_hosts is not None:
            needed = max(1, math.ceil(self.quorum * expected))
            if reported < needed:
                raise QuorumError(
                    f"epoch{'' if epoch is None else f' {epoch}'} has "
                    f"{reported} of {expected} host reports; "
                    f"quorum requires {needed} "
                    f"(missing: {sorted(missing_hosts) or 'unknown'})"
                )
        if not reports:
            raise MergeError("no host reports to aggregate")

        degraded: DegradedEpoch | None = None
        scale = 1.0
        if reported < expected:
            scale = (
                expected / reported if self.degraded_rescale else 1.0
            )
            degraded = DegradedEpoch(
                expected_hosts=expected,
                reported_hosts=reported,
                missing_hosts=tuple(sorted(missing_hosts)),
                scale=scale,
                epoch=epoch,
            )

        with trace_span(
            self.telemetry,
            "controlplane.merge",
            reports=len(reports),
            expected=expected,
        ):
            merged_sketch = merge_sketches([r.sketch for r in reports])
            merged_snapshot = merge_fastpath_snapshots(
                [r.fastpath for r in reports]
            )
            if scale != 1.0:
                merged_sketch = rescale_sketch(merged_sketch, scale)
                merged_snapshot = rescale_snapshot(
                    merged_snapshot, scale
                )
        with trace_span(
            self.telemetry, "controlplane.recover", mode=self.mode.value
        ):
            state = recover(
                normal=merged_sketch,
                snapshot=merged_snapshot,
                mode=self.mode,
                lens_config=self.lens_config,
                telemetry=self.telemetry,
            )
        network = NetworkResult(
            sketch=state.sketch,
            flow_estimates=state.flow_estimates,
            snapshot=merged_snapshot,
            num_hosts=reported,
            lens_iterations=state.lens_iterations,
            lens_converged=state.lens_converged,
            tracked_bytes=state.tracked_bytes,
            small_flow_bytes=state.small_flow_bytes,
            degraded=degraded,
        )
        if self.telemetry is not None:
            publish_controller_epoch(self.telemetry.registry, network)
        return network
