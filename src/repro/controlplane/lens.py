"""LENS-style compressive sensing solver (§5.3, Eq. 4).

Solves the matrix interpolation problem

    minimize   alpha*||T||_*  +  beta*||x||_1  +  (1/(2*gamma))*||Y||_F^2
    subject to T = N + A x + Y
               lower <= x <= upper          (Eq. 3, Lemma 4.1 bounds)
               sum(x) + mass(Y) = V         (Eq. 2, volume conservation)
               Y >= 0

where ``N`` is the merged normal-path sketch matrix, ``A`` the sketch's
linear operator restricted to the fast-path-tracked flows (their hash
positions are recomputable from the shared seeds), and ``Y ~ sk(y)``
the small-noise image of the untracked small flows.

The solver is an alternating-direction method, as in LENS [9]:
singular-value thresholding handles the nuclear norm, a proximal
gradient step with soft-thresholding and box projection handles the
``x`` block, a closed-form shrinkage handles ``Y``, and a scaling
projection enforces volume conservation each sweep.  Per §5.3, sketches
without low-rank structure (Count-Min-like) drop the nuclear term
(``alpha = 0``), exactly as the paper prescribes.

All quantities are normalized by ``max(N)`` internally so the paper's
parameter formulas (computed on matrix densities) behave consistently
across sketch scales.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.common.errors import ConfigError

#: beta = sqrt(2 * log2(flow key space)) = sqrt(2 * 104) per §5.3.
PAPER_BETA = math.sqrt(2 * 104)


@dataclass
class LensConfig:
    """Solver parameters.  ``None`` selects the paper's formulas (§5.3)."""

    alpha: float | None = None  # (sqrt(m)+sqrt(n)) * sqrt(density(N))
    beta: float | None = None  # sqrt(2*104)
    gamma: float | None = None  # 10 * estimated noise std
    rho: float = 1.0  # ADMM penalty
    max_iterations: int = 60
    tolerance: float = 1e-4
    x_inner_steps: int = 5  # proximal-gradient steps per sweep
    #: §7.5 early termination: stop once the per-flow estimates x have
    #: stabilized (relative change below this), even if the nuclear /
    #: noise terms have not converged — "it is possible to terminate
    #: the computation early even though these unnecessary terms do not
    #: converge" (the paper cuts Deltoid's recovery from 64s to 11s).
    #: ``None`` disables early termination.
    x_stability_tolerance: float | None = 1e-2
    #: Quadratic anchor pulling x toward the Eq. 3 box midpoint — the
    #: minimax-optimal point under Lemma 4.1 (error <= e_f / 2).  The
    #: low-rank coupling *refines* the estimate around it; without the
    #: anchor, long solves can drift x within wide boxes to absorb the
    #: volume constraint.  Scaled against the coupling's Lipschitz
    #: constant, so the per-step pull toward the midpoint is this
    #: fraction of the distance.
    midpoint_anchor: float = 0.25


@dataclass
class LensResult:
    """Solution of the interpolation problem."""

    matrix: np.ndarray  # recovered T
    x: np.ndarray  # per-tracked-flow byte estimates
    noise: np.ndarray  # Y ~ sk(y)
    iterations: int
    converged: bool
    residuals: list[float] = field(default_factory=list)


def singular_value_threshold(
    matrix: np.ndarray, threshold: float
) -> np.ndarray:
    """Prox of the nuclear norm: shrink singular values by threshold."""
    u, s, vt = np.linalg.svd(matrix, full_matrices=False)
    s = np.maximum(s - threshold, 0.0)
    keep = s > 0
    if not keep.any():
        return np.zeros_like(matrix)
    return (u[:, keep] * s[keep]) @ vt[keep]


def _soft_threshold(values: np.ndarray, threshold: float) -> np.ndarray:
    return np.sign(values) * np.maximum(np.abs(values) - threshold, 0.0)


def apply_a_dense(
    operator: sparse.csr_matrix, x: np.ndarray, shape: tuple[int, int]
) -> np.ndarray:
    """Apply the sketch operator to x, reshaped to the sketch matrix."""
    return (operator @ x).reshape(shape)


def _build_operator(
    positions: list[list[tuple[int, int, float]]], shape: tuple[int, int]
) -> sparse.csr_matrix:
    """Sparse (m*n) x num_flows matrix applying sk() to the x vector."""
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    num_cols = shape[1]
    for flow_index, flow_positions in enumerate(positions):
        for row, col, coef in flow_positions:
            rows.append(row * num_cols + col)
            cols.append(flow_index)
            data.append(coef)
    return sparse.csr_matrix(
        (data, (rows, cols)),
        shape=(shape[0] * shape[1], len(positions)),
    )


def lens_interpolate(
    n_matrix: np.ndarray,
    positions: list[list[tuple[int, int, float]]],
    lower: np.ndarray,
    upper: np.ndarray,
    volume: float,
    low_rank: bool = True,
    config: LensConfig | None = None,
) -> LensResult:
    """Recover ``T``, ``x`` and ``Y`` from the merged measurement state.

    Parameters
    ----------
    n_matrix:
        Merged normal-path sketch matrix ``N``.
    positions:
        Per tracked flow, its sketch positions ``(row, col, coef)``.
    lower, upper:
        Lemma 4.1 per-flow bounds (Eq. 3).
    volume:
        Total fast-path byte count ``V`` (Eq. 2).
    low_rank:
        Whether to keep the nuclear-norm term (§5.3 drops it for
        sketches with no low-rank structure).
    """
    config = config or LensConfig()
    num_flows = len(positions)
    lower = np.asarray(lower, dtype=np.float64)
    upper = np.asarray(upper, dtype=np.float64)
    if lower.shape != (num_flows,) or upper.shape != (num_flows,):
        raise ConfigError("bounds must match the number of tracked flows")
    if np.any(lower > upper):
        raise ConfigError("lower bounds must not exceed upper bounds")
    if volume < 0:
        raise ConfigError("volume must be non-negative")

    n = np.asarray(n_matrix, dtype=np.float64)
    m_rows, n_cols = n.shape
    scale = float(max(n.max(initial=0.0), upper.max(initial=0.0), 1.0))
    n_scaled = n / scale
    lo = lower / scale
    hi = upper / scale
    vol = volume / scale

    # Paper parameter formulas (§5.3), on the normalized matrix.
    density = float(n_scaled.sum()) / (m_rows * n_cols)
    alpha = config.alpha
    if alpha is None:
        alpha = (math.sqrt(m_rows) + math.sqrt(n_cols)) * math.sqrt(
            max(density, 1e-12)
        )
    if not low_rank:
        alpha = 0.0
    # beta (the l1 weight, sqrt(2*104) per §5.3) is inactive inside the
    # Eq. 3 box: its subgradient is the constant beta*sign(x) there, so
    # it shifts but never re-orders interior solutions, and the
    # midpoint anchor dominates.  Kept in LensConfig for completeness.
    gamma = config.gamma
    if gamma is None:
        nonzero = n_scaled[n_scaled > 0]
        if len(nonzero) > 1:
            small = nonzero[nonzero <= np.median(nonzero)]
            noise_std = float(small.std()) if len(small) > 1 else 1e-3
        else:
            noise_std = 1e-3
        gamma = 10.0 * max(noise_std, 1e-6)
    rho = config.rho

    if num_flows == 0:
        # Nothing tracked: spread the whole fast-path volume as noise.
        noise = np.full_like(n_scaled, vol / (m_rows * n_cols))
        return LensResult(
            matrix=(n_scaled + noise) * scale,
            x=np.zeros(0),
            noise=noise * scale,
            iterations=0,
            converged=True,
        )

    operator = _build_operator(positions, n.shape)
    # Per-unit mass each flow deposits (for the volume projection) and
    # the Lipschitz bound of the x block.
    abs_mass = np.asarray(
        np.abs(operator).sum(axis=0)
    ).reshape(-1)
    mean_mass = float(abs_mass.mean()) if len(abs_mass) else 1.0
    col_sq = np.asarray(operator.multiply(operator).sum(axis=0)).reshape(-1)
    lipschitz = float(col_sq.max(initial=1.0))
    step = 1.0 / (rho * lipschitz)

    if alpha == 0.0:
        # Without the nuclear term the objective separates: inside the
        # Eq. 3 box, beta*||x||_1 is linear and the Frobenius term only
        # couples through the total mass, so the minimax-optimal
        # interior choice is the box midpoint for x (error <= e_f / 2
        # per flow, Lemma 4.1) with the leftover volume realized as the
        # Frobenius-minimal (uniform) noise.  This is also the §5.3
        # prescription: for sketches with no low-rank structure the
        # ||T||_* term is dropped from the optimization.
        x = (lo + hi) / 2.0
        remaining = max(vol - float(x.sum()), 0.0)
        noise = np.full_like(
            n_scaled, remaining * mean_mass / (m_rows * n_cols)
        )
        return LensResult(
            matrix=(n_scaled + apply_a_dense(operator, x, n.shape)
                    + noise) * scale,
            x=x * scale,
            noise=noise * scale,
            iterations=0,
            converged=True,
        )

    def apply_a(x: np.ndarray) -> np.ndarray:
        return (operator @ x).reshape(m_rows, n_cols)

    def apply_at(matrix: np.ndarray) -> np.ndarray:
        return operator.T @ matrix.reshape(-1)

    # ------------------------------------------------------------------
    # x block.  Within the Eq. 3 box the per-flow estimate is decided
    # by Lemma 4.1, not by the matrix terms: the box midpoint is the
    # minimax-optimal interior point (error <= e_f / 2; for the
    # vast majority of tracked flows e_f is tiny, Figure 16b).  A few
    # refinement steps of the coupled objective run below with a
    # midpoint trust region; they matter only for late-inserted flows
    # whose boxes are genuinely wide.
    # ------------------------------------------------------------------
    midpoint = (lo + hi) / 2.0
    x = midpoint.copy()
    base = n_scaled + apply_a(x)
    remaining = max(vol - float(x.sum()), 0.0)
    target_mass = remaining * mean_mass
    noise = np.full_like(n_scaled, target_mass / (m_rows * n_cols))

    residuals: list[float] = []
    converged = False
    iteration = 0

    # ------------------------------------------------------------------
    # T/Y refinement (nuclear path): with x pinned to the box interior,
    # minimize  alpha*||base + Y||_* + (1/2 gamma)*||Y||_F^2  over
    # Y >= 0 with mass(Y) fixed by Eq. 2, by projected proximal
    # iterations (SVT subgradient + shrinkage + simplex-style mass
    # rescaling).  This is where the low-rank structure of T fills the
    # counters the fast path's traffic never reached.
    # ------------------------------------------------------------------
    eta = 1.0 / (1.0 + 1.0 / gamma)  # step for the smooth Y term
    for iteration in range(1, config.max_iterations + 1):
        noise_previous = noise
        t_matrix = base + noise
        # Nuclear-norm subgradient at T: alpha * U V^T on the leading
        # components (SVT of T minus T is the proximal direction).
        shrunk = singular_value_threshold(t_matrix, alpha / rho)
        nuclear_pull = t_matrix - shrunk  # points away from low rank
        noise = noise - eta * (nuclear_pull / rho + noise / gamma)
        # Small refinement of wide-box x toward the denoised matrix.
        coupling = apply_at(nuclear_pull) / max(lipschitz, 1.0)
        x = np.clip(
            x
            - step * coupling
            - config.midpoint_anchor * step * (x - midpoint),
            lo,
            hi,
        )
        base = n_scaled + apply_a(x)
        # Projections: positivity and the Eq. 2 mass.
        noise = np.maximum(noise, 0.0)
        remaining = max(vol - float(x.sum()), 0.0)
        target_mass = remaining * mean_mass
        current_mass = float(noise.sum())
        if target_mass <= 0:
            noise[:] = 0.0
        elif current_mass <= 1e-12:
            noise[:] = target_mass / (m_rows * n_cols)
        else:
            noise *= target_mass / current_mass

        change = float(np.abs(noise - noise_previous).sum()) / (
            1.0 + float(np.abs(noise_previous).sum())
        )
        residuals.append(change)
        if change < config.tolerance:
            converged = True
            break
        if (
            config.x_stability_tolerance is not None
            and iteration >= 3
            and change < config.x_stability_tolerance
        ):
            # §7.5 early termination: the useful components (x and the
            # noise field) have stabilized; the nuclear term need not
            # converge for the measurement tasks to be answerable.
            converged = True
            break

    t_matrix = (n_scaled + apply_a(x) + noise) * scale
    return LensResult(
        matrix=t_matrix,
        x=x * scale,
        noise=noise * scale,
        iterations=iteration,
        converged=converged,
        residuals=residuals,
    )
