"""Merging local results into global views (§5.1).

Sketches merge by counter-wise (matrix) addition; fast-path hash tables
merge by union.  Hosts monitor disjoint flow sets (§3.1), so a flow
normally appears in at most one table; if partitioning ever double-sees
a flow, its counters add (``e`` bounds add conservatively).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.common.errors import MergeError
from repro.fastpath.topk import FastPathSnapshot, FlowEntry
from repro.sketches.base import Sketch


def merge_sketches(sketches: Sequence[Sketch]) -> Sketch:
    """Matrix-add per-host sketches into the global sketch ``N``.

    The inputs are not modified.  All sketches must share type, shape,
    and seed (enforced by each sketch's ``merge``).
    """
    if not sketches:
        raise MergeError("no sketches to merge")
    merged = sketches[0].clone_empty()
    for sketch in sketches:
        merged.merge(sketch)
    return merged


def rescale_sketch(sketch: Sketch, factor: float) -> Sketch:
    """A copy of ``sketch`` with its volume counters scaled by ``factor``.

    This is the degraded-mode correction: when only ``k`` of ``n``
    hosts reported, the merged sketch under-counts every aggregate by
    roughly ``k/n`` (hosts see disjoint flow shares, §3.1), so scaling
    by ``n/k`` restores network-wide volume in expectation.  Only the
    *linear* counters (``to_matrix``/``load_matrix``) scale; non-linear
    side state (FlowRadar's XOR fields, UnivMon's trackers, Bloom bits)
    is copied as the reporting hosts left it — those structures track
    flow *identities*, which missing hosts genuinely lost.
    """
    if factor < 0:
        raise MergeError(f"rescale factor must be >= 0, got {factor}")
    scaled = sketch.clone_empty()
    scaled.merge(sketch)
    if factor != 1.0:
        scaled.load_matrix(scaled.to_matrix() * factor)
    return scaled


def rescale_snapshot(
    snapshot: FastPathSnapshot, factor: float
) -> FastPathSnapshot:
    """A copy of ``snapshot`` with its *volume-level* fields scaled.

    ``V`` (total_bytes) and ``E`` (total_decremented) scale by
    ``factor`` so the recovery's volume constraint (Eq. 2) covers the
    missing hosts' share; per-flow entries do **not** scale — they are
    real observations of real flows, and the missing hosts' flows are
    realized by recovery as additional untracked small-flow mass
    instead (see ``docs/robustness.md``).
    """
    if factor < 0:
        raise MergeError(f"rescale factor must be >= 0, got {factor}")
    entries = {
        flow: FlowEntry(entry.e, entry.r, entry.d)
        for flow, entry in snapshot.entries.items()
    }
    return FastPathSnapshot(
        entries=entries,
        total_bytes=snapshot.total_bytes * factor,
        total_decremented=snapshot.total_decremented * factor,
        insert_count=snapshot.insert_count,
        evict_count=snapshot.evict_count,
        update_count=snapshot.update_count,
        hit_count=snapshot.hit_count,
        kickout_count=snapshot.kickout_count,
        reject_count=snapshot.reject_count,
    )


def merge_fastpath_snapshots(
    snapshots: Sequence[FastPathSnapshot | None],
) -> FastPathSnapshot:
    """Union per-host fast-path tables into the global table ``H``.

    ``V`` and ``E`` add across hosts.  Missing snapshots (hosts that ran
    without a fast path) contribute nothing.
    """
    entries: dict = {}
    total_bytes = 0.0
    total_decremented = 0.0
    insert_count = 0
    evict_count = 0
    update_count = 0
    hit_count = 0
    kickout_count = 0
    reject_count = 0
    for snapshot in snapshots:
        if snapshot is None:
            continue
        total_bytes += snapshot.total_bytes
        total_decremented += snapshot.total_decremented
        insert_count += snapshot.insert_count
        evict_count += snapshot.evict_count
        update_count += snapshot.update_count
        hit_count += snapshot.hit_count
        kickout_count += snapshot.kickout_count
        reject_count += snapshot.reject_count
        for flow, entry in snapshot.entries.items():
            existing = entries.get(flow)
            if existing is None:
                entries[flow] = FlowEntry(entry.e, entry.r, entry.d)
            else:
                existing.e += entry.e
                existing.r += entry.r
                existing.d += entry.d
    return FastPathSnapshot(
        entries=entries,
        total_bytes=total_bytes,
        total_decremented=total_decremented,
        insert_count=insert_count,
        evict_count=evict_count,
        update_count=update_count,
        hit_count=hit_count,
        kickout_count=kickout_count,
        reject_count=reject_count,
    )
