"""Report serialization: the host → controller wire format.

The prototype ships per-epoch results over ZeroMQ (§6).  This module
provides the equivalent encoding for :class:`LocalReport` objects —
length-prefixed frames carrying a pickled payload — with a *restricted*
unpickler that only resolves classes from this package, numpy, and
Python builtins, so a controller cannot be made to execute arbitrary
constructors from a hostile host.

Framing:  ``MAGIC (4B) | version (1B) | length (4B, BE) | payload``.
"""

from __future__ import annotations

import io
import pickle
import struct

from repro.common.errors import ConfigError
from repro.dataplane.host import LocalReport

_MAGIC = b"SKVR"
_VERSION = 1
_HEADER = struct.Struct(">4sBI")

#: Module prefixes the unpickler will resolve classes from.
_ALLOWED_PREFIXES = (
    "repro.",
    "numpy",
    "builtins",
    "collections",
)

#: Builtins that are never safe to resolve, regardless of module.
_DENIED_NAMES = {"eval", "exec", "open", "compile", "__import__"}


class _RestrictedUnpickler(pickle.Unpickler):
    def find_class(self, module: str, name: str):  # noqa: D102
        if name in _DENIED_NAMES:
            raise ConfigError(
                f"refusing to unpickle builtin {name!r}"
            )
        if not any(
            module == prefix.rstrip(".") or module.startswith(prefix)
            for prefix in _ALLOWED_PREFIXES
        ):
            raise ConfigError(
                f"refusing to unpickle {module}.{name} "
                "(module not allowlisted)"
            )
        return super().find_class(module, name)


def encode_report(report: LocalReport) -> bytes:
    """Serialize one host's epoch report into a framed message."""
    payload = pickle.dumps(report, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(_MAGIC, _VERSION, len(payload)) + payload


def decode_report(message: bytes) -> LocalReport:
    """Parse a framed message back into a :class:`LocalReport`.

    Raises :class:`ConfigError` on bad magic, version, truncation, or
    any attempt to resolve a non-allowlisted class.
    """
    if len(message) < _HEADER.size:
        raise ConfigError("message too short for a report frame")
    magic, version, length = _HEADER.unpack_from(message, 0)
    if magic != _MAGIC:
        raise ConfigError(f"bad frame magic {magic!r}")
    if version != _VERSION:
        raise ConfigError(f"unsupported frame version {version}")
    payload = message[_HEADER.size :]
    if len(payload) != length:
        raise ConfigError(
            f"frame length mismatch: header says {length}, "
            f"got {len(payload)}"
        )
    report = _RestrictedUnpickler(io.BytesIO(payload)).load()
    if not isinstance(report, LocalReport):
        raise ConfigError(
            f"frame did not contain a LocalReport "
            f"(got {type(report).__name__})"
        )
    return report


def encode_stream(reports: list[LocalReport]) -> bytes:
    """Concatenate framed reports (a whole epoch's worth)."""
    return b"".join(encode_report(report) for report in reports)


def decode_stream(data: bytes) -> list[LocalReport]:
    """Split a concatenation of frames back into reports."""
    reports: list[LocalReport] = []
    offset = 0
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            raise ConfigError("trailing bytes are not a full frame")
        _magic, _version, length = _HEADER.unpack_from(data, offset)
        end = offset + _HEADER.size + length
        reports.append(decode_report(data[offset:end]))
        offset = end
    return reports
