"""Report serialization: the host → controller wire format.

The prototype ships per-epoch results over ZeroMQ (§6).  This module
provides the equivalent encoding for :class:`LocalReport` objects —
framed messages carrying a pickled payload — with a *restricted*
unpickler that only resolves classes from this package, numpy, and
Python builtins, so a controller cannot be made to execute arbitrary
constructors from a hostile host.

Two frame versions are understood:

* **v2** (written) — ``MAGIC (4B) | version (1B) | host_id (4B, BE) |
  epoch (4B, BE) | length (4B, BE) | crc32 (4B, BE) | payload``.  The
  CRC covers the payload, so any truncation or bit-flip — in flight or
  at rest — is detected before the unpickler ever runs; host id and
  epoch ride in the clear so the collector can dedup and reject stale
  replays without deserializing.
* **v1** (rejected by default) — ``MAGIC | version | length |
  payload``, the pre-CRC format.  v1 carries no integrity check, so
  decoding it is refused with :class:`CorruptFrameError` unless the
  ``REPRO_ALLOW_V1_FRAMES=1`` escape hatch is set, in which case the
  historical ``DeprecationWarning`` behavior applies (see
  ``docs/robustness.md`` for the removal schedule).

On top of the codec sits :class:`ReportCollector`: per-host delivery
with timeout, exponential-backoff retry, duplicate suppression by
``(host_id, epoch)``, and stale-epoch rejection — the defensive half
of the fault model in ``docs/robustness.md``.
"""

from __future__ import annotations

import io
import os
import pickle
import random
import struct
import warnings
import zlib
from collections import deque
from dataclasses import dataclass, field

from repro.common.errors import (
    ConfigError,
    CorruptFrameError,
    ReportTimeout,
    StaleEpochError,
)
from repro.dataplane.host import LocalReport
from repro.faults.plan import FaultKind

_MAGIC = b"SKVR"
_VERSION_V1 = 1
_VERSION = 2
_HEADER_V1 = struct.Struct(">4sBI")
_HEADER_V2 = struct.Struct(">4sBIIII")

#: Module prefixes the unpickler will resolve classes from.
_ALLOWED_PREFIXES = (
    "repro.",
    "numpy",
    "builtins",
    "collections",
)

#: Builtins that are never safe to resolve, regardless of module.
_DENIED_NAMES = {"eval", "exec", "open", "compile", "__import__"}


class _RestrictedUnpickler(pickle.Unpickler):
    def find_class(self, module: str, name: str):  # noqa: D102
        if name in _DENIED_NAMES:
            raise ConfigError(
                f"refusing to unpickle builtin {name!r}"
            )
        if not any(
            module == prefix.rstrip(".") or module.startswith(prefix)
            for prefix in _ALLOWED_PREFIXES
        ):
            raise ConfigError(
                f"refusing to unpickle {module}.{name} "
                "(module not allowlisted)"
            )
        return super().find_class(module, name)


def restricted_loads(payload: bytes):
    """Deserialize ``payload`` through the restricted unpickler.

    The single safe-deserialization chokepoint of the package: report
    decoding and durability-checkpoint decoding both route through it,
    so the allowlist above governs everything that crosses a trust
    boundary (wire frames, snapshot files at rest).
    """
    return _RestrictedUnpickler(io.BytesIO(payload)).load()


#: Lifetime count of v1 (un-CRC'd) frames this process decoded; see
#: :func:`v1_frames_decoded`.
_v1_frames_decoded = 0


def v1_frames_decoded() -> int:
    """How many deprecated v1 frames this process has decoded so far.

    The per-epoch increment is also tracked in
    :class:`CollectionStats.v1_frames` and published as the
    ``sketchvisor_transport_v1_frames_total`` counter.
    """
    return _v1_frames_decoded


def allow_v1_frames() -> bool:
    """Whether the ``REPRO_ALLOW_V1_FRAMES=1`` escape hatch is set.

    Checked at decode time (not import time) so tests and operators
    can flip it without re-importing the module.
    """
    flag = os.environ.get("REPRO_ALLOW_V1_FRAMES", "")
    return bool(flag) and flag != "0"


#: Ceiling on the backoff exponent: ``factor**_MAX_BACKOFF_EXPONENT``
#: is where the schedule goes flat.  With the default factor of 2 that
#: caps a 0.01 s base at ~11 minutes — long retry chains (fail-over
#: redelivery loops, soak runs) plateau instead of overflowing into
#: astronomically large float delays.  Attempts at or below the cap
#: are bit-identical to the uncapped schedule.
_MAX_BACKOFF_EXPONENT = 16


def jittered_backoff(
    base: float,
    factor: float,
    jitter: float,
    seed: int,
    epoch: int,
    host: int,
    attempt: int,
) -> float:
    """Exponential backoff with seeded decorrelating jitter.

    The sleep before retry ``attempt`` (1-based) is
    ``base * factor**(attempt-1) * (1 + jitter * u)`` with ``u`` drawn
    uniformly from ``[-1, 1)`` by an RNG keyed on
    ``(seed, epoch, host, attempt)`` — a pure function, so the same
    cell always backs off identically across runs, while distinct
    hosts failing in the same epoch retry on *different* schedules
    (no thundering herd).  Shared by the in-process
    :class:`ReportCollector` and the socket transport's
    :class:`~repro.cluster.transport.HostChannel` so both paths
    account identical backoff for identical fault schedules.

    The exponent saturates at :data:`_MAX_BACKOFF_EXPONENT`, so the
    sleep plateaus on long retry chains rather than growing without
    bound (the jitter draw still varies per attempt past the cap).
    """
    sleep = base * (
        factor ** min(attempt - 1, _MAX_BACKOFF_EXPONENT)
    )
    if jitter == 0.0:
        return sleep
    rng = random.Random(
        (seed & 0xFFFF_FFFF) << 40
        ^ (epoch & 0xFFFF) << 24
        ^ (host & 0xFFFF) << 8
        ^ (attempt & 0xFF)
    )
    return sleep * (1.0 + jitter * (2.0 * rng.random() - 1.0))


@dataclass(frozen=True)
class FrameHeader:
    """The in-the-clear part of one frame.

    ``host_id`` / ``epoch`` are ``None`` for v1 frames, which did not
    carry them.
    """

    version: int
    length: int
    host_id: int | None = None
    epoch: int | None = None
    crc32: int | None = None

    @property
    def size(self) -> int:
        return (
            _HEADER_V1.size if self.version == _VERSION_V1
            else _HEADER_V2.size
        )


def encode_report(report: LocalReport, epoch: int = 0) -> bytes:
    """Serialize one host's epoch report into a framed v2 message."""
    payload = pickle.dumps(report, protocol=pickle.HIGHEST_PROTOCOL)
    return (
        _HEADER_V2.pack(
            _MAGIC,
            _VERSION,
            report.host_id & 0xFFFF_FFFF,
            epoch & 0xFFFF_FFFF,
            len(payload),
            zlib.crc32(payload),
        )
        + payload
    )


def peek_header(message: bytes) -> FrameHeader:
    """Parse and validate a frame's header without touching the payload.

    Raises :class:`CorruptFrameError` on anything malformed: short
    buffer, bad magic, unknown version, or a declared payload length
    that disagrees with the actual buffer (truncated *or* oversized).
    """
    if len(message) < _HEADER_V1.size:
        raise CorruptFrameError("message too short for a report frame")
    magic, version = struct.unpack_from(">4sB", message, 0)
    if magic != _MAGIC:
        raise CorruptFrameError(f"bad frame magic {magic!r}")
    if version == _VERSION_V1:
        _, _, length = _HEADER_V1.unpack_from(message, 0)
        header = FrameHeader(version=version, length=length)
    elif version == _VERSION:
        if len(message) < _HEADER_V2.size:
            raise CorruptFrameError(
                "message too short for a v2 report frame"
            )
        _, _, host_id, epoch, length, crc = _HEADER_V2.unpack_from(
            message, 0
        )
        header = FrameHeader(
            version=version,
            length=length,
            host_id=host_id,
            epoch=epoch,
            crc32=crc,
        )
    else:
        raise CorruptFrameError(f"unsupported frame version {version}")
    actual = len(message) - header.size
    if actual != header.length:
        raise CorruptFrameError(
            f"frame length mismatch: header says {header.length}, "
            f"got {actual} payload bytes "
            f"({'truncated' if actual < header.length else 'oversized'} "
            "frame)"
        )
    return header


def decode_report(message: bytes) -> LocalReport:
    """Parse a framed message (v1 or v2) back into a :class:`LocalReport`.

    Raises :class:`CorruptFrameError` (a :class:`ConfigError`) on bad
    magic, version, length mismatch, CRC mismatch, or an undecodable
    payload, and :class:`ConfigError` on any attempt to resolve a
    non-allowlisted class.
    """
    header = peek_header(message)
    if header.version == _VERSION_V1:
        if not allow_v1_frames():
            raise CorruptFrameError(
                "v1 report frames are no longer accepted: v1 carries "
                "no CRC32, so payload corruption is undetectable. "
                "Re-encode with encode_report (v2), or set "
                "REPRO_ALLOW_V1_FRAMES=1 to decode legacy frames "
                "during migration."
            )
        global _v1_frames_decoded
        _v1_frames_decoded += 1
        warnings.warn(
            "decoding a v1 report frame: v1 carries no CRC32, so "
            "payload corruption is undetectable; re-encode with "
            "encode_report (v2)",
            DeprecationWarning,
            stacklevel=2,
        )
    payload = message[header.size :]
    if header.crc32 is not None and zlib.crc32(payload) != header.crc32:
        raise CorruptFrameError(
            "frame CRC32 mismatch (payload corrupted in flight)"
        )
    try:
        report = restricted_loads(payload)
    except ConfigError:
        raise
    except Exception as exc:  # pickle raises a zoo of types on garbage
        raise CorruptFrameError(
            f"frame payload is not a valid pickle: {exc}"
        ) from exc
    if not isinstance(report, LocalReport):
        raise CorruptFrameError(
            f"frame did not contain a LocalReport "
            f"(got {type(report).__name__})"
        )
    if header.host_id is not None and header.host_id != (
        report.host_id & 0xFFFF_FFFF
    ):
        raise CorruptFrameError(
            f"frame header host {header.host_id} does not match "
            f"payload host {report.host_id}"
        )
    return report


def encode_stream(
    reports: list[LocalReport], epoch: int = 0
) -> bytes:
    """Concatenate framed reports (a whole epoch's worth)."""
    return b"".join(encode_report(report, epoch) for report in reports)


def decode_stream(data: bytes) -> list[LocalReport]:
    """Split a concatenation of frames back into reports."""
    reports: list[LocalReport] = []
    offset = 0
    while offset < len(data):
        if offset + _HEADER_V1.size > len(data):
            raise CorruptFrameError(
                "trailing bytes are not a full frame"
            )
        magic, version = struct.unpack_from(">4sB", data, offset)
        if magic != _MAGIC:
            raise CorruptFrameError(
                f"bad frame magic {magic!r} at offset {offset}"
            )
        if version == _VERSION_V1:
            header_size = _HEADER_V1.size
            _, _, length = _HEADER_V1.unpack_from(data, offset)
        elif version == _VERSION:
            if offset + _HEADER_V2.size > len(data):
                raise CorruptFrameError(
                    "trailing bytes are not a full v2 frame"
                )
            header_size = _HEADER_V2.size
            _, _, _, _, length, _ = _HEADER_V2.unpack_from(data, offset)
        else:
            raise CorruptFrameError(
                f"unsupported frame version {version} at offset {offset}"
            )
        end = offset + header_size + length
        if end > len(data):
            raise CorruptFrameError(
                f"frame at offset {offset} declares {length} payload "
                f"bytes but only {len(data) - offset - header_size} "
                "remain (truncated stream)"
            )
        reports.append(decode_report(data[offset:end]))
        offset = end
    return reports


# ----------------------------------------------------------------------
# Resilient collection
# ----------------------------------------------------------------------


@dataclass
class CollectionStats:
    """What one epoch's collection pass had to survive."""

    retries: int = 0
    drops: int = 0
    timeouts: int = 0
    corrupt_frames: int = 0
    duplicates: int = 0
    stale_frames: int = 0
    crashes: int = 0
    #: Deprecated v1 (un-CRC'd) frames the collector decoded; not a
    #: fault (the frame was usable) but worth surfacing — v1 carries no
    #: integrity check.
    v1_frames: int = 0
    #: Total *simulated* backoff the retry loop would have slept.
    backoff_seconds: float = 0.0
    # ------------------------------------------------------------------
    # Connection-level faults, filled only by the cluster transport
    # (``repro.cluster``) — the in-process collector never sees them.
    #: TCP connection attempts refused by the aggregator.
    conn_refused: int = 0
    #: Connections reset (RST) mid-transfer.
    conn_resets: int = 0
    #: Clean closes after only a prefix of the frame was written.
    partial_writes: int = 0
    #: Transfers abandoned because the peer stalled past the idle
    #: deadline.
    slow_peers: int = 0
    #: Hosts network-partitioned from the controller for the epoch.
    partitions: int = 0
    #: Sends that had to wait on a full queue / saturated socket
    #: buffer (the transport's backpressure signal, not a fault).
    backpressure_waits: int = 0
    #: Hosts skipped this epoch because their transport circuit
    #: breaker was open (consecutive failed epochs).
    quarantined_hosts: int = 0
    # ------------------------------------------------------------------
    # Aggregator-tier faults and fail-over accounting, filled only by
    # the cluster runner.
    #: Aggregators that crashed mid-epoch (listener gone, shard lost).
    agg_crashes: int = 0
    #: Aggregators that hung mid-epoch (connectable but silent).
    agg_hangs: int = 0
    #: Aggregators declared dead by the heartbeat watchdog and
    #: re-sharded onto survivors.
    failovers: int = 0
    #: Host reports re-shipped to a surviving aggregator after their
    #: shard died.
    redeliveries: int = 0
    #: Redeliveries answered ``ACK_DUP`` — the report had already
    #: landed elsewhere (e.g. a mid-flight retry re-routed first), so
    #: the dedup set collapsed the second copy.
    redelivery_dups: int = 0

    @property
    def aggregator_faults(self) -> int:
        """Aggregator-tier faults only (cluster transport)."""
        return self.agg_crashes + self.agg_hangs

    @property
    def connection_faults(self) -> int:
        """Socket-layer faults only (cluster transport)."""
        return (
            self.conn_refused
            + self.conn_resets
            + self.partial_writes
            + self.slow_peers
            + self.partitions
        )

    @property
    def faults_seen(self) -> int:
        return (
            self.drops
            + self.timeouts
            + self.corrupt_frames
            + self.duplicates
            + self.stale_frames
            + self.crashes
            + self.connection_faults
            + self.aggregator_faults
        )


@dataclass
class CollectionResult:
    """Everything the collector gathered for one epoch."""

    epoch: int
    reports: list[LocalReport] = field(default_factory=list)
    missing_hosts: list[int] = field(default_factory=list)
    stats: CollectionStats = field(default_factory=CollectionStats)
    #: When a hierarchical aggregator tier folded host reports into
    #: partial aggregates, how many *hosts* the ``reports`` list
    #: actually represents (``None`` on the flat path where one entry
    #: is one host).
    aggregated_from: int | None = None
    #: One record per aggregator the heartbeat watchdog declared dead
    #: this epoch (:class:`~repro.cluster.runner.FailoverRecord`);
    #: empty everywhere but the cluster runner.
    failovers: list = field(default_factory=list)

    @property
    def hosts_reported(self) -> int:
        """How many hosts' reports this collection represents."""
        return (
            len(self.reports)
            if self.aggregated_from is None
            else self.aggregated_from
        )

    @property
    def complete(self) -> bool:
        return not self.missing_hosts


class ReportCollector:
    """Per-host report delivery with timeout, retry, and dedup.

    The collector models the controller side of the report channel: it
    attempts delivery of each host's frame, treats drops / delays /
    corruption / staleness as *retriable* (up to ``max_retries``, with
    exponential backoff), deduplicates by ``(host_id, epoch)``, and
    reports hosts whose every attempt failed as missing — the input to
    the controller's degraded-mode merge.

    Time is simulated, not slept: injected delays compare against
    ``timeout`` and backoff accumulates into
    :attr:`CollectionStats.backoff_seconds`, so chaos suites run at
    full speed while still exercising the deadline logic.

    Parameters
    ----------
    timeout:
        Per-attempt delivery deadline in (simulated) seconds.
    max_retries:
        Retries after the first failed attempt, per host.
    backoff_base, backoff_factor:
        Retry ``i`` (simulated-)sleeps ``backoff_base * factor**i``.
    backoff_jitter:
        Fractional jitter applied to every backoff sleep: retry ``i``
        sleeps ``backoff_base * factor**i * (1 + jitter * u)`` with
        ``u`` drawn uniformly from ``[-1, 1)`` by a *seeded* RNG keyed
        on ``(jitter_seed, epoch, host, attempt)``.  Without it, every
        host that fails in the same epoch retries on the exact same
        schedule — a thundering herd against the controller.  Jitter
        is fully deterministic: the same cell always draws the same
        perturbation.  Set to ``0.0`` for the historical fixed
        schedule.
    jitter_seed:
        Root seed of the jitter draw stream.
    injector:
        Optional :class:`~repro.faults.injector.FaultInjector`; when
        absent every frame is delivered cleanly on the first attempt
        and the collector is pure overheadless bookkeeping.
    """

    def __init__(
        self,
        timeout: float = 0.25,
        max_retries: int = 3,
        backoff_base: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_jitter: float = 0.1,
        jitter_seed: int = 0,
        injector=None,
    ):
        if max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if timeout <= 0:
            raise ConfigError("timeout must be positive")
        if not 0.0 <= backoff_jitter < 1.0:
            raise ConfigError(
                f"backoff_jitter must be in [0, 1), got {backoff_jitter}"
            )
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_jitter = backoff_jitter
        self.jitter_seed = jitter_seed
        self.injector = injector

    # ------------------------------------------------------------------
    def backoff_for(self, epoch: int, host: int, attempt: int) -> float:
        """The (simulated) sleep before retry ``attempt`` (1-based).

        A pure function of ``(jitter_seed, epoch, host, attempt)`` —
        deterministic across runs, but *decorrelated* across hosts so
        simultaneous failures do not retry in lockstep.
        """
        return jittered_backoff(
            self.backoff_base,
            self.backoff_factor,
            self.backoff_jitter,
            self.jitter_seed,
            epoch,
            host,
            attempt,
        )

    # ------------------------------------------------------------------
    def collect(
        self, frames_by_host: dict[int, bytes], epoch: int
    ) -> CollectionResult:
        """Deliver one epoch's frames through the fault model.

        ``frames_by_host`` maps host id to that host's encoded v2
        frame.  Hosts are processed in id order so fault schedules and
        results are independent of dict insertion order.
        """
        result = CollectionResult(epoch=epoch)
        seen: set[tuple[int, int]] = set()
        for host in sorted(frames_by_host):
            frame = frames_by_host[host]
            status, report = self._collect_host(
                host, frame, epoch, seen, result.stats
            )
            if status == "missing":
                result.missing_hosts.append(host)
            elif status == "ok":
                result.reports.append(report)
                if self.injector is not None:
                    self.injector.remember(host, frame)
            # "duplicate": the report was already collected under
            # another delivery — nothing to add, nothing missing.
        return result

    # ------------------------------------------------------------------
    def _collect_host(
        self,
        host: int,
        frame: bytes,
        epoch: int,
        seen: set[tuple[int, int]],
        stats: CollectionStats,
    ) -> tuple[str, LocalReport | None]:
        """Deliver one host's frame: ``("ok", report)``,
        ``("missing", None)``, or ``("duplicate", None)``."""
        injector = self.injector
        faults: deque[FaultKind] = deque(
            injector.schedule(epoch, host) if injector else ()
        )
        if FaultKind.CRASH in faults:
            # A crashed host never answers; burn the whole retry
            # budget waiting on it.
            injector.record(FaultKind.CRASH)
            stats.crashes += 1
            stats.retries += self.max_retries
            stats.backoff_seconds += self._total_backoff(epoch, host)
            return "missing", None
        for attempt in range(self.max_retries + 1):
            if attempt > 0:
                stats.retries += 1
                stats.backoff_seconds += self.backoff_for(
                    epoch, host, attempt
                )
            fault = faults.popleft() if faults else None
            try:
                delivered, copies = self._deliver(
                    frame, fault, epoch, host, attempt
                )
                header = peek_header(delivered)
                if header.epoch is not None and header.epoch != (
                    epoch & 0xFFFF_FFFF
                ):
                    raise StaleEpochError(
                        f"host {host} delivered a frame for epoch "
                        f"{header.epoch} during epoch {epoch}"
                    )
                report = decode_report(delivered)
                if header.version == _VERSION_V1:
                    stats.v1_frames += 1
            except ReportTimeout:
                if fault is FaultKind.DELAY:
                    stats.timeouts += 1
                else:
                    stats.drops += 1
                continue
            except StaleEpochError:
                stats.stale_frames += 1
                continue
            except CorruptFrameError:
                stats.corrupt_frames += 1
                continue
            key = (report.host_id, epoch)
            if key in seen:
                stats.duplicates += 1
                return "duplicate", None
            seen.add(key)
            if copies > 1:
                stats.duplicates += copies - 1
            return "ok", report
        return "missing", None

    def _deliver(
        self,
        frame: bytes,
        fault: FaultKind | None,
        epoch: int,
        host: int,
        attempt: int,
    ) -> tuple[bytes, int]:
        """One delivery attempt: ``(frame bytes, copies delivered)``.

        Raises :class:`ReportTimeout` when nothing usable arrives by
        the deadline (drop or delay).
        """
        if fault is None:
            return frame, 1
        injector = self.injector
        injector.record(fault)
        if fault is FaultKind.DROP:
            raise ReportTimeout(
                f"host {host} report dropped (epoch {epoch}, "
                f"attempt {attempt})"
            )
        if fault is FaultKind.DELAY:
            raise ReportTimeout(
                f"host {host} report exceeded the {self.timeout}s "
                f"deadline (epoch {epoch}, attempt {attempt})"
            )
        if fault is FaultKind.TRUNCATE:
            return injector.truncate(frame, epoch, host, attempt), 1
        if fault is FaultKind.BITFLIP:
            return injector.bitflip(frame, epoch, host, attempt), 1
        if fault is FaultKind.DUPLICATE:
            return frame, 2
        if fault is FaultKind.REPLAY:
            stale = injector.stale_frame(host)
            if stale is None:
                raise ReportTimeout(
                    f"host {host} replayed nothing (no earlier frame); "
                    "treating as a drop"
                )
            return stale, 1
        raise ConfigError(f"unhandled fault kind {fault}")

    def _total_backoff(self, epoch: int, host: int) -> float:
        return sum(
            self.backoff_for(epoch, host, attempt)
            for attempt in range(1, self.max_retries + 1)
        )
