"""Accuracy metrics (§7.1).

* recall — ratio of true instances reported;
* precision — ratio of reported instances that are true;
* relative error — mean of ``|v_hat - v| / v`` over true instances;
* MRD (mean relative difference) — for flow size distributions,
  ``(1/z) * sum_i |n_i - n_hat_i| / ((n_i + n_hat_i) / 2)`` with ``z``
  the maximum flow size.
"""

from __future__ import annotations

from collections.abc import Mapping


def recall(reported: Mapping, truth: Mapping) -> float:
    """Fraction of true instances that were reported."""
    if not truth:
        return 1.0
    hits = sum(1 for key in truth if key in reported)
    return hits / len(truth)


def precision(reported: Mapping, truth: Mapping) -> float:
    """Fraction of reported instances that are true."""
    if not reported:
        return 1.0 if not truth else 0.0
    hits = sum(1 for key in reported if key in truth)
    return hits / len(reported)


def f1_score(reported: Mapping, truth: Mapping) -> float:
    """Harmonic mean of precision and recall."""
    p = precision(reported, truth)
    r = recall(reported, truth)
    if p + r == 0:
        return 0.0
    return 2 * p * r / (p + r)


def relative_error(
    reported: Mapping[object, float], truth: Mapping[object, float]
) -> float:
    """Mean relative estimation error over *true* instances (§7.1).

    True instances missing from ``reported`` count as 100% error
    (estimate zero), matching how the paper's NR arm reaches ~100%
    relative error when the fast path's traffic is discarded.
    """
    if not truth:
        return 0.0
    total = 0.0
    for key, true_value in truth.items():
        if true_value == 0:
            continue
        estimate = float(reported.get(key, 0.0))
        total += abs(estimate - true_value) / true_value
    return total / len(truth)


def scalar_relative_error(estimate: float, truth: float) -> float:
    """Relative error of a scalar estimate (cardinality, entropy)."""
    if truth == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate - truth) / abs(truth)


def mean_relative_difference(
    estimated: Mapping[int, float], truth: Mapping[int, float]
) -> float:
    """MRD between two flow size distributions (§7.1).

    ``z`` is the maximum flow size present in either distribution;
    sizes absent from both contribute zero.
    """
    sizes = set(estimated) | set(truth)
    if not sizes:
        return 0.0
    z = max(sizes)
    if z == 0:
        return 0.0
    total = 0.0
    for size in sizes:
        n_true = float(truth.get(size, 0.0))
        n_est = float(estimated.get(size, 0.0))
        denominator = (n_true + n_est) / 2.0
        if denominator > 0:
            total += abs(n_true - n_est) / denominator
    return total / z
